#include "serve/socket_io.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "util/metrics.h"

namespace aneci::serve {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Waits for `events` (POLLIN/POLLOUT) on the fd for at most `deadline_ms`.
/// OK = ready; DeadlineExceeded = budget ran out; IoError = poll failed.
Status AwaitReady(int fd, short events, int deadline_ms, const char* verb) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  while (true) {
    const int rc = ::poll(&pfd, 1, deadline_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0)
      return Status::DeadlineExceeded(std::string(verb) + " deadline (" +
                                      std::to_string(deadline_ms) +
                                      " ms) exceeded");
    if (errno == EINTR) continue;  // conservatively restart the full budget
    return Errno("poll");
  }
}

}  // namespace

void SocketFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

double MonotonicMs() {
  // The one blessed deadline clock for the serving layer; confined to the
  // shim like the syscalls it gates.
  // NOLINTNEXTLINE(banned-nondeterminism): deadlines need a real monotonic clock; this is the audited shim boundary.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

StatusOr<SocketFd> SocketIo::Listen(int port, int* bound_port) {
  if (port < 0 || port > 65535)
    return Status::InvalidArgument("port " + std::to_string(port) +
                                   " outside [0, 65535]");
  SocketFd sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0)
    return Errno("setsockopt(SO_REUSEADDR)");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0)
    return Errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  if (::listen(sock.fd(), 128) < 0) return Errno("listen");

  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) <
        0)
      return Errno("getsockname");
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

StatusOr<SocketFd> SocketIo::Accept(const SocketFd& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      SocketFd conn(fd);
      const int one = 1;
      // Nagle off: frames are small and latency-sensitive.
      (void)::setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
      return conn;
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

StatusOr<SocketFd> SocketIo::Connect(int port) {
  if (port <= 0 || port > 65535)
    return Status::InvalidArgument("port " + std::to_string(port) +
                                   " outside (0, 65535]");
  SocketFd sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  while (true) {
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int one = 1;
      (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
      return sock;
    }
    if (errno == EINTR) continue;
    return Errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
}

StatusOr<std::string> SocketIo::Read(const SocketFd& socket, size_t capacity,
                                     int deadline_ms) {
  if (deadline_ms > 0)
    ANECI_RETURN_IF_ERROR(
        AwaitReady(socket.fd(), POLLIN, deadline_ms, "read"));
  std::string buffer(capacity, '\0');
  while (true) {
    const ssize_t n = ::recv(socket.fd(), buffer.data(), buffer.size(), 0);
    if (n >= 0) {
      buffer.resize(static_cast<size_t>(n));
      return buffer;
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status SocketIo::WriteAll(const SocketFd& socket, std::string_view bytes,
                          int deadline_ms) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    // The budget bounds each blocked wait for writability, so a peer that
    // stops draining cannot park this thread forever.
    if (deadline_ms > 0)
      ANECI_RETURN_IF_ERROR(
          AwaitReady(socket.fd(), POLLOUT, deadline_ms, "write"));
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as a
    // Status, not a process-killing SIGPIPE.
    const ssize_t n = ::send(socket.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status SocketIo::ShutdownRead(const SocketFd& socket) {
  if (::shutdown(socket.fd(), SHUT_RD) < 0) return Errno("shutdown");
  return Status::OK();
}

Status SocketIo::ShutdownWrite(const SocketFd& socket) {
  if (::shutdown(socket.fd(), SHUT_WR) < 0) return Errno("shutdown");
  return Status::OK();
}

Status SocketIo::ShutdownBoth(const SocketFd& socket) {
  if (::shutdown(socket.fd(), SHUT_RDWR) < 0) return Errno("shutdown");
  return Status::OK();
}

SocketIo* SocketIo::Default() {
  // The base class's virtuals ARE the POSIX implementation (the same shape
  // as util/env.h: Env::Default() returns the base, fault injectors
  // subclass). Leaked intentionally: connection threads may touch it during
  // static destruction.
  static SocketIo* io = new SocketIo();
  return io;
}

// --- FaultInjectingSocketIo --------------------------------------------------

StatusOr<SocketFd> FaultInjectingSocketIo::Listen(int port, int* bound_port) {
  return base_->Listen(port, bound_port);
}

StatusOr<SocketFd> FaultInjectingSocketIo::Accept(const SocketFd& listener) {
  return base_->Accept(listener);
}

StatusOr<SocketFd> FaultInjectingSocketIo::Connect(int port) {
  return base_->Connect(port);
}

FaultInjectingSocketIo::ReadFault FaultInjectingSocketIo::NextReadFault() {
  std::lock_guard<std::mutex> lock(mu_);
  const int index = reads_++;
  if (index == schedule_.reset_read_at) {
    ++injected_;
    return ReadFault::kReset;
  }
  // One draw per call keeps the stream aligned regardless of which fault
  // (if any) fires, so schedules are comparable across probability knobs.
  const double draw = rng_.NextDouble();
  double edge = schedule_.reset_read;
  if (draw < edge) {
    ++injected_;
    return ReadFault::kReset;
  }
  edge += schedule_.delayed_read;
  if (draw < edge) {
    ++injected_;
    return ReadFault::kDelay;
  }
  edge += schedule_.short_read;
  if (draw < edge) {
    ++injected_;
    return ReadFault::kShort;
  }
  return ReadFault::kNone;
}

FaultInjectingSocketIo::WriteFault FaultInjectingSocketIo::NextWriteFault() {
  std::lock_guard<std::mutex> lock(mu_);
  const int index = writes_++;
  if (index == schedule_.reset_write_at) {
    ++injected_;
    return WriteFault::kReset;
  }
  if (index == schedule_.partial_write_at) {
    ++injected_;
    return WriteFault::kPartial;
  }
  const double draw = rng_.NextDouble();
  double edge = schedule_.reset_write;
  if (draw < edge) {
    ++injected_;
    return WriteFault::kReset;
  }
  edge += schedule_.partial_write;
  if (draw < edge) {
    ++injected_;
    return WriteFault::kPartial;
  }
  return WriteFault::kNone;
}

StatusOr<std::string> FaultInjectingSocketIo::Read(const SocketFd& socket,
                                                   size_t capacity,
                                                   int deadline_ms) {
  static Counter* injected = MetricsRegistry::Global().GetCounter(
      "serve/fault_injected", MetricClass::kScheduling);
  switch (NextReadFault()) {
    case ReadFault::kReset:
      injected->Increment();
      // Drop the connection for real so the peer observes the reset too.
      (void)base_->ShutdownBoth(socket);
      return Status::IoError("injected ECONNRESET on read");
    case ReadFault::kDelay:
      injected->Increment();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(schedule_.delay_ms));
      break;
    case ReadFault::kShort:
      injected->Increment();
      capacity = std::min<size_t>(capacity, 8);
      break;
    case ReadFault::kNone:
      break;
  }
  return base_->Read(socket, capacity, deadline_ms);
}

Status FaultInjectingSocketIo::WriteAll(const SocketFd& socket,
                                        std::string_view bytes,
                                        int deadline_ms) {
  static Counter* injected = MetricsRegistry::Global().GetCounter(
      "serve/fault_injected", MetricClass::kScheduling);
  switch (NextWriteFault()) {
    case WriteFault::kReset:
      injected->Increment();
      (void)base_->ShutdownBoth(socket);
      return Status::IoError("injected ECONNRESET on write");
    case WriteFault::kPartial: {
      injected->Increment();
      // Deliver a prefix, then drop the connection: the peer sees a frame
      // that stops mid-body (`serve/mid_frame_disconnects` on the server).
      const size_t prefix =
          std::min(schedule_.partial_write_bytes, bytes.size());
      if (prefix > 0)
        (void)base_->WriteAll(socket, bytes.substr(0, prefix), deadline_ms);
      (void)base_->ShutdownBoth(socket);
      return Status::IoError("injected mid-frame disconnect after " +
                             std::to_string(prefix) + " bytes");
    }
    case WriteFault::kNone:
      break;
  }
  return base_->WriteAll(socket, bytes, deadline_ms);
}

Status FaultInjectingSocketIo::ShutdownRead(const SocketFd& socket) {
  return base_->ShutdownRead(socket);
}

Status FaultInjectingSocketIo::ShutdownWrite(const SocketFd& socket) {
  return base_->ShutdownWrite(socket);
}

Status FaultInjectingSocketIo::ShutdownBoth(const SocketFd& socket) {
  return base_->ShutdownBoth(socket);
}

int FaultInjectingSocketIo::reads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reads_;
}

int FaultInjectingSocketIo::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

int FaultInjectingSocketIo::injected_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

}  // namespace aneci::serve

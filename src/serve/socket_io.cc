#include "serve/socket_io.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace aneci::serve {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

void SocketFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<SocketFd> ListenOnLoopback(int port, int* bound_port) {
  if (port < 0 || port > 65535)
    return Status::InvalidArgument("port " + std::to_string(port) +
                                   " outside [0, 65535]");
  SocketFd sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0)
    return Errno("setsockopt(SO_REUSEADDR)");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0)
    return Errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  if (::listen(sock.fd(), 128) < 0) return Errno("listen");

  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) <
        0)
      return Errno("getsockname");
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

StatusOr<SocketFd> AcceptConnection(const SocketFd& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      SocketFd conn(fd);
      const int one = 1;
      // Nagle off: frames are small and latency-sensitive.
      (void)::setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
      return conn;
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

StatusOr<SocketFd> ConnectToLoopback(int port) {
  if (port <= 0 || port > 65535)
    return Status::InvalidArgument("port " + std::to_string(port) +
                                   " outside (0, 65535]");
  SocketFd sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  while (true) {
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int one = 1;
      (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
      return sock;
    }
    if (errno == EINTR) continue;
    return Errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
}

StatusOr<std::string> SocketRead(const SocketFd& socket, size_t capacity) {
  std::string buffer(capacity, '\0');
  while (true) {
    const ssize_t n = ::recv(socket.fd(), buffer.data(), buffer.size(), 0);
    if (n >= 0) {
      buffer.resize(static_cast<size_t>(n));
      return buffer;
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status SocketWriteAll(const SocketFd& socket, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as a
    // Status, not a process-killing SIGPIPE.
    const ssize_t n = ::send(socket.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status ShutdownWrite(const SocketFd& socket) {
  if (::shutdown(socket.fd(), SHUT_WR) < 0) return Errno("shutdown");
  return Status::OK();
}

Status ShutdownBoth(const SocketFd& socket) {
  if (::shutdown(socket.fd(), SHUT_RDWR) < 0) return Errno("shutdown");
  return Status::OK();
}

}  // namespace aneci::serve

#include "serve/model_artifact.h"

#include <utility>

#include "anomaly/anomaly_score.h"
#include "tasks/logistic_regression.h"
#include "util/byteio.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace aneci::serve {
namespace {

constexpr char kMagic[4] = {'A', 'N', 'S', 'V'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 4 + 4 + 8 + 4;

void PutMatrix(std::string* out, const Matrix& m) {
  PutScalarLe<int32_t>(out, m.rows());
  PutScalarLe<int32_t>(out, m.cols());
  const double* data = m.data();
  for (int64_t i = 0; i < m.size(); ++i) PutDoubleLe(out, data[i]);
}

Status GetMatrix(ByteReader* reader, const std::string& origin,
                 const char* name, int32_t want_rows, int32_t want_cols,
                 Matrix* m) {
  int32_t rows = 0, cols = 0;
  ANECI_RETURN_IF_ERROR(reader->Get(&rows));
  ANECI_RETURN_IF_ERROR(reader->Get(&cols));
  if (rows != want_rows || cols != want_cols)
    return Status::InvalidArgument(
        "model artifact tensor '" + std::string(name) + "' is " +
        std::to_string(rows) + "x" + std::to_string(cols) +
        ", header declares " + std::to_string(want_rows) + "x" +
        std::to_string(want_cols) + ": " + origin);
  if (static_cast<uint64_t>(rows) * cols * sizeof(double) > reader->remaining())
    return Status::InvalidArgument("model artifact payload truncated: " +
                                   origin);
  *m = Matrix(rows, cols);
  double* data = m->data();
  for (int64_t i = 0; i < m->size(); ++i)
    ANECI_RETURN_IF_ERROR(reader->GetDouble(&data[i]));
  return Status::OK();
}

}  // namespace

ModelArtifact BuildModelArtifact(const Graph& graph, const Matrix& z,
                                 const Matrix& p, uint64_t head_seed) {
  ModelArtifact artifact;
  artifact.num_nodes = z.rows();
  artifact.embed_dim = z.cols();
  artifact.z = z;
  artifact.p = p;

  artifact.community.resize(p.rows());
  for (int i = 0; i < p.rows(); ++i) {
    int best = 0;
    for (int c = 1; c < p.cols(); ++c)
      if (p(i, c) > p(i, best)) best = c;  // Strict '>' keeps the lowest tie.
    artifact.community[i] = best;
  }
  artifact.anomaly = MembershipEntropyScores(p);

  if (graph.has_labels()) {
    artifact.num_classes = graph.num_classes();
    Rng rng(head_seed);
    LogisticRegression head;
    head.Fit(z, graph.labels(), artifact.num_classes, rng);
    artifact.proba = head.PredictProba(z);
  }
  return artifact;
}

std::string SerializeModelArtifact(const ModelArtifact& artifact) {
  std::string payload;
  PutScalarLe<uint32_t>(&payload, static_cast<uint32_t>(artifact.num_nodes));
  PutScalarLe<uint32_t>(&payload, static_cast<uint32_t>(artifact.embed_dim));
  PutScalarLe<uint32_t>(&payload, static_cast<uint32_t>(artifact.num_classes));
  PutMatrix(&payload, artifact.z);
  PutMatrix(&payload, artifact.p);
  PutMatrix(&payload, artifact.proba);
  for (int32_t c : artifact.community) PutScalarLe<int32_t>(&payload, c);
  for (double a : artifact.anomaly) PutDoubleLe(&payload, a);

  std::string file;
  file.reserve(kHeaderSize + payload.size());
  file.append(kMagic, sizeof(kMagic));
  PutScalarLe<uint32_t>(&file, kVersion);
  PutScalarLe<uint64_t>(&file, static_cast<uint64_t>(payload.size()));
  PutScalarLe<uint32_t>(&file, Crc32(payload.data(), payload.size()));
  file += payload;
  return file;
}

StatusOr<ModelArtifact> ParseModelArtifact(std::string_view bytes,
                                           const std::string& origin) {
  if (bytes.size() < kHeaderSize)
    return Status::InvalidArgument("model artifact too short for header: " +
                                   origin);
  if (bytes.compare(0, sizeof(kMagic),
                    std::string_view(kMagic, sizeof(kMagic))) != 0)
    return Status::InvalidArgument("not a model artifact (bad magic): " +
                                   origin);

  ByteReader header(bytes.substr(4, kHeaderSize - 4), "model artifact header",
                    origin);
  uint32_t version = 0, crc = 0;
  uint64_t payload_size = 0;
  ANECI_RETURN_IF_ERROR(header.Get(&version));
  ANECI_RETURN_IF_ERROR(header.Get(&payload_size));
  ANECI_RETURN_IF_ERROR(header.Get(&crc));
  if (version != kVersion)
    return Status::InvalidArgument(
        "unsupported model artifact version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kVersion) + "): " +
        origin);
  if (bytes.size() - kHeaderSize != payload_size)
    return Status::InvalidArgument(
        "model artifact truncated: header declares " +
        std::to_string(payload_size) + " payload bytes, file has " +
        std::to_string(bytes.size() - kHeaderSize) + ": " + origin);
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (Crc32(payload.data(), payload.size()) != crc)
    return Status::InvalidArgument("model artifact CRC mismatch (corrupt): " +
                                   origin);

  ModelArtifact artifact;
  ByteReader reader(payload, "model artifact payload", origin);
  uint32_t num_nodes = 0, embed_dim = 0, num_classes = 0;
  ANECI_RETURN_IF_ERROR(reader.Get(&num_nodes));
  ANECI_RETURN_IF_ERROR(reader.Get(&embed_dim));
  ANECI_RETURN_IF_ERROR(reader.Get(&num_classes));
  // Bound the counts before any allocation is sized from them: a corrupt
  // header that slipped past the CRC must not drive a multi-GB resize.
  constexpr uint32_t kMaxNodes = 1u << 28;
  constexpr uint32_t kMaxDim = 1u << 16;
  if (num_nodes == 0 || num_nodes > kMaxNodes)
    return Status::InvalidArgument("model artifact node count " +
                                   std::to_string(num_nodes) +
                                   " out of range: " + origin);
  if (embed_dim == 0 || embed_dim > kMaxDim)
    return Status::InvalidArgument("model artifact embed dim " +
                                   std::to_string(embed_dim) +
                                   " out of range: " + origin);
  if (num_classes > kMaxDim)
    return Status::InvalidArgument("model artifact class count " +
                                   std::to_string(num_classes) +
                                   " out of range: " + origin);
  artifact.num_nodes = static_cast<int32_t>(num_nodes);
  artifact.embed_dim = static_cast<int32_t>(embed_dim);
  artifact.num_classes = static_cast<int32_t>(num_classes);

  ANECI_RETURN_IF_ERROR(GetMatrix(&reader, origin, "z", artifact.num_nodes,
                                  artifact.embed_dim, &artifact.z));
  ANECI_RETURN_IF_ERROR(GetMatrix(&reader, origin, "p", artifact.num_nodes,
                                  artifact.embed_dim, &artifact.p));
  ANECI_RETURN_IF_ERROR(GetMatrix(
      &reader, origin, "proba", artifact.num_classes == 0 ? 0 : artifact.num_nodes,
      artifact.num_classes, &artifact.proba));
  artifact.community.resize(num_nodes);
  for (int32_t& c : artifact.community) {
    ANECI_RETURN_IF_ERROR(reader.Get(&c));
    if (c < 0 || c >= artifact.embed_dim)
      return Status::InvalidArgument(
          "model artifact community id " + std::to_string(c) +
          " outside [0, " + std::to_string(artifact.embed_dim) + "): " +
          origin);
  }
  artifact.anomaly.resize(num_nodes);
  for (double& a : artifact.anomaly)
    ANECI_RETURN_IF_ERROR(reader.GetDouble(&a));
  if (!reader.exhausted())
    return Status::InvalidArgument("model artifact has trailing bytes: " +
                                   origin);
  return artifact;
}

Status SaveModelArtifact(const ModelArtifact& artifact,
                         const std::string& path, Env* env) {
  if (!env) env = Env::Default();
  static Counter* saves = MetricsRegistry::Global().GetCounter(
      "serve/artifact/saves", MetricClass::kDeterministic);
  saves->Increment();
  return env->WriteFileAtomic(path, SerializeModelArtifact(artifact));
}

StatusOr<ModelArtifact> LoadModelArtifact(const std::string& path, Env* env) {
  if (!env) env = Env::Default();
  static Counter* loads = MetricsRegistry::Global().GetCounter(
      "serve/artifact/loads", MetricClass::kDeterministic);
  loads->Increment();
  ANECI_ASSIGN_OR_RETURN(const std::string bytes, env->ReadFile(path));
  return ParseModelArtifact(bytes, path);
}

}  // namespace aneci::serve

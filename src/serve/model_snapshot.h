// An immutable, shared-ownership view of one loaded serving artifact.
//
// Snapshot lifecycle (docs/serving.md §3): a ModelSnapshot is constructed
// once — from a file or an in-memory artifact — stamped with a monotonically
// increasing version, and never mutated afterwards. Readers obtain it
// through a shared_ptr<const ModelSnapshot>; the hot-swap path publishes a
// new snapshot with a single pointer exchange (see QueryEngine), so an
// in-flight query keeps the snapshot it pinned alive until its last
// reference drops, and no reader ever observes a half-swapped model.
#ifndef ANECI_SERVE_MODEL_SNAPSHOT_H_
#define ANECI_SERVE_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "serve/model_artifact.h"
#include "util/env.h"
#include "util/status.h"

namespace aneci::serve {

class ModelSnapshot {
 public:
  ModelSnapshot(ModelArtifact artifact, uint64_t version, std::string source)
      : artifact_(std::move(artifact)),
        version_(version),
        source_(std::move(source)) {}

  /// Loads and validates `path`, wrapping it as snapshot `version`.
  static StatusOr<std::shared_ptr<const ModelSnapshot>> Load(
      const std::string& path, uint64_t version, Env* env = nullptr);

  uint64_t version() const { return version_; }
  /// The path (or label) the snapshot was built from, echoed by stats/swap.
  const std::string& source() const { return source_; }

  int num_nodes() const { return artifact_.num_nodes; }
  int embed_dim() const { return artifact_.embed_dim; }
  int num_classes() const { return artifact_.num_classes; }
  bool has_label_head() const { return artifact_.num_classes > 0; }

  const Matrix& z() const { return artifact_.z; }
  const Matrix& p() const { return artifact_.p; }
  const Matrix& proba() const { return artifact_.proba; }
  const std::vector<int32_t>& community() const { return artifact_.community; }
  const std::vector<double>& anomaly() const { return artifact_.anomaly; }

 private:
  const ModelArtifact artifact_;
  const uint64_t version_;
  const std::string source_;
};

}  // namespace aneci::serve

#endif  // ANECI_SERVE_MODEL_SNAPSHOT_H_

#include "serve/query_engine.h"

#include <algorithm>
#include <utility>

#include "linalg/matrix.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace aneci::serve {
namespace {

// Serving latencies are sub-millisecond for lookups and a few ms for k-NN
// scans on large snapshots; the bounds cover 10µs .. 1s.
std::vector<double> LatencyBoundsMs() {
  return {0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000};
}

Histogram* LatencyHistogram(QueryOp op) {
  static Histogram* histograms[] = {
      MetricsRegistry::Global().GetHistogram(
          "serve/latency_ms/lookup", LatencyBoundsMs(),
          MetricClass::kScheduling),
      MetricsRegistry::Global().GetHistogram(
          "serve/latency_ms/knn", LatencyBoundsMs(), MetricClass::kScheduling),
      MetricsRegistry::Global().GetHistogram(
          "serve/latency_ms/classify", LatencyBoundsMs(),
          MetricClass::kScheduling),
      MetricsRegistry::Global().GetHistogram(
          "serve/latency_ms/anomaly", LatencyBoundsMs(),
          MetricClass::kScheduling),
      MetricsRegistry::Global().GetHistogram(
          "serve/latency_ms/community", LatencyBoundsMs(),
          MetricClass::kScheduling),
      MetricsRegistry::Global().GetHistogram(
          "serve/latency_ms/stats", LatencyBoundsMs(),
          MetricClass::kScheduling),
  };
  return histograms[static_cast<int>(op)];
}

Counter* RequestCounter(QueryOp op) {
  static Counter* counters[] = {
      MetricsRegistry::Global().GetCounter("serve/requests/lookup",
                                           MetricClass::kDeterministic),
      MetricsRegistry::Global().GetCounter("serve/requests/knn",
                                           MetricClass::kDeterministic),
      MetricsRegistry::Global().GetCounter("serve/requests/classify",
                                           MetricClass::kDeterministic),
      MetricsRegistry::Global().GetCounter("serve/requests/anomaly",
                                           MetricClass::kDeterministic),
      MetricsRegistry::Global().GetCounter("serve/requests/community",
                                           MetricClass::kDeterministic),
      MetricsRegistry::Global().GetCounter("serve/requests/stats",
                                           MetricClass::kDeterministic),
  };
  return counters[static_cast<int>(op)];
}

}  // namespace

const char* QueryOpName(QueryOp op) {
  switch (op) {
    case QueryOp::kLookup: return "lookup";
    case QueryOp::kKnn: return "knn";
    case QueryOp::kClassify: return "classify";
    case QueryOp::kAnomaly: return "anomaly";
    case QueryOp::kCommunity: return "community";
    case QueryOp::kStats: return "stats";
  }
  return "unknown";
}

QueryEngine::QueryEngine(std::shared_ptr<const ModelSnapshot> initial)
    : snapshot_(std::move(initial)) {
  static Gauge* version = MetricsRegistry::Global().GetGauge(
      "serve/snapshot_version", MetricClass::kDeterministic);
  version->Set(snapshot_ ? static_cast<double>(snapshot_->version()) : 0.0);
}

std::shared_ptr<const ModelSnapshot> QueryEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::shared_ptr<const ModelSnapshot> QueryEngine::Swap(
    std::shared_ptr<const ModelSnapshot> next) {
  static Counter* swaps = MetricsRegistry::Global().GetCounter(
      "serve/swaps", MetricClass::kDeterministic);
  static Gauge* version = MetricsRegistry::Global().GetGauge(
      "serve/snapshot_version", MetricClass::kDeterministic);
  const double new_version =
      next ? static_cast<double>(next->version()) : 0.0;
  std::shared_ptr<const ModelSnapshot> displaced;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    displaced = std::exchange(snapshot_, std::move(next));
  }
  swaps->Increment();
  version->Set(new_version);
  return displaced;
}

QueryResult QueryEngine::Execute(const QueryRequest& request) const {
  RequestCounter(request.op)->Increment();
  ScopedLatencyTimer latency(LatencyHistogram(request.op));
  auto pinned = snapshot();
  QueryResult result;
  if (!pinned) {
    static Counter* errors = MetricsRegistry::Global().GetCounter(
        "serve/errors", MetricClass::kDeterministic);
    errors->Increment();
    result.status = Status::FailedPrecondition("no snapshot loaded");
    return result;
  }
  result = ExecuteOn(*pinned, request);
  if (!result.ok()) {
    static Counter* errors = MetricsRegistry::Global().GetCounter(
        "serve/errors", MetricClass::kDeterministic);
    errors->Increment();
  }
  return result;
}

std::vector<QueryResult> QueryEngine::ExecuteBatch(
    const std::vector<QueryRequest>& requests) const {
  std::vector<QueryResult> results(requests.size());
  ParallelFor(0, static_cast<int64_t>(requests.size()), 1,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i)
                  results[i] = Execute(requests[i]);
              });
  return results;
}

QueryResult QueryEngine::ExecuteOn(const ModelSnapshot& snapshot,
                                   const QueryRequest& request) const {
  QueryResult result;
  QueryResponse& out = result.response;
  out.snapshot_version = snapshot.version();
  out.op = request.op;
  out.id = request.id;

  if (request.op == QueryOp::kStats) {
    out.num_nodes = snapshot.num_nodes();
    out.embed_dim = snapshot.embed_dim();
    out.num_classes = snapshot.num_classes();
    out.source = snapshot.source();
    return result;
  }

  const int n = snapshot.num_nodes();
  if (request.id < 0 || request.id >= n) {
    result.status = Status::InvalidArgument(
        "node id " + std::to_string(request.id) + " outside [0, " +
        std::to_string(n) + ")");
    return result;
  }

  const int dim = snapshot.embed_dim();
  switch (request.op) {
    case QueryOp::kLookup: {
      const double* row = snapshot.z().RowPtr(request.id);
      out.embedding.assign(row, row + dim);
      return result;
    }
    case QueryOp::kKnn: {
      if (n < 2) {
        result.status = Status::FailedPrecondition(
            "knn needs at least 2 nodes, snapshot has " + std::to_string(n));
        return result;
      }
      const int k = std::clamp(request.k, 1, n - 1);
      const double* query = snapshot.z().RowPtr(request.id);
      // Score fill is embarrassingly parallel (disjoint writes); the top-k
      // selection runs serially over the full score vector with ties broken
      // by ascending id, so results are identical at every thread count.
      std::vector<double> scores(n);
      ParallelFor(0, n, 256, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i)
          scores[i] = CosineSimilarity(query, snapshot.z().RowPtr(i), dim);
      });
      std::vector<int> order;
      order.reserve(n - 1);
      for (int i = 0; i < n; ++i)
        if (i != request.id) order.push_back(i);
      std::partial_sort(order.begin(), order.begin() + k, order.end(),
                        [&](int a, int b) {
                          if (scores[a] != scores[b])
                            return scores[a] > scores[b];
                          return a < b;
                        });
      out.neighbors.reserve(k);
      for (int i = 0; i < k; ++i)
        out.neighbors.push_back({order[i], scores[order[i]]});
      return result;
    }
    case QueryOp::kClassify: {
      if (!snapshot.has_label_head()) {
        result.status =
            Status::FailedPrecondition("snapshot has no label head");
        return result;
      }
      const int classes = snapshot.num_classes();
      const double* row = snapshot.proba().RowPtr(request.id);
      out.proba.assign(row, row + classes);
      int best = 0;
      for (int c = 1; c < classes; ++c)
        if (out.proba[c] > out.proba[best]) best = c;
      out.label = best;
      return result;
    }
    case QueryOp::kAnomaly: {
      out.anomaly_score = snapshot.anomaly()[request.id];
      return result;
    }
    case QueryOp::kCommunity: {
      out.community = snapshot.community()[request.id];
      const double* row = snapshot.p().RowPtr(request.id);
      out.membership.assign(row, row + dim);
      return result;
    }
    case QueryOp::kStats:
      break;  // handled above
  }
  result.status = Status::InvalidArgument("unhandled query op");
  return result;
}

}  // namespace aneci::serve

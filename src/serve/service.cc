#include "serve/service.h"

#include <utility>
#include <vector>

#include "serve/socket_io.h"
#include "util/metrics.h"

namespace aneci::serve {

EmbedService::EmbedService(std::shared_ptr<const ModelSnapshot> initial,
                           Env* env)
    : engine_(initial), env_(env ? env : Env::Default()),
      next_version_(initial ? initial->version() + 1 : 1) {}

StatusOr<std::shared_ptr<const ModelSnapshot>> EmbedService::SwapFromFile(
    const std::string& path) {
  static Counter* failures = MetricsRegistry::Global().GetCounter(
      "serve/swap_failures", MetricClass::kDeterministic);
  // Load and validate BEFORE touching the active snapshot: a corrupt or
  // missing artifact must leave the old model serving untouched.
  auto loaded = ModelSnapshot::Load(
      path, next_version_.fetch_add(1, std::memory_order_relaxed), env_);
  if (!loaded.ok()) {
    failures->Increment();
    return loaded.status();
  }
  std::shared_ptr<const ModelSnapshot> snapshot = std::move(loaded).value();
  engine_.Swap(snapshot);
  return snapshot;
}

std::shared_ptr<const ModelSnapshot> EmbedService::SwapFromArtifact(
    ModelArtifact artifact, std::string source) {
  auto snapshot = std::make_shared<const ModelSnapshot>(
      std::move(artifact), next_version_.fetch_add(1, std::memory_order_relaxed),
      std::move(source));
  engine_.Swap(snapshot);
  return snapshot;
}

uint64_t EmbedService::next_version() const {
  return next_version_.load(std::memory_order_relaxed);
}

ServeSession::ServeSession(EmbedService* service, SessionOptions options)
    : service_(service), options_(std::move(options)) {
  if (!options_.now_ms) options_.now_ms = [] { return MonotonicMs(); };
}

void ServeSession::Consume(std::string_view bytes) {
  if (closed_) return;
  decoder_.Feed(bytes);
  // Pipelined query frames that arrived together are executed as one batch
  // through the thread pool; swap and error frames are ordering barriers,
  // so every response still lands in request order.
  std::vector<PendingQuery> batch;
  std::string body;
  while (decoder_.Next(&body)) {
    auto parsed = ParseWireRequest(body);
    if (!parsed.ok()) {
      static Counter* bad_requests = MetricsRegistry::Global().GetCounter(
          "serve/bad_requests", MetricClass::kDeterministic);
      bad_requests->Increment();
      FlushBatch(&batch);
      output_ += EncodeFrame(RenderError(parsed.status()));
      continue;
    }
    const WireRequest& request = parsed.value();
    if (request.kind == WireRequest::Kind::kSwap) {
      FlushBatch(&batch);  // Queries before the swap answer pre-swap.
      auto swapped = service_->SwapFromFile(request.swap_path);
      if (swapped.ok()) {
        const auto& snapshot = *swapped.value();
        output_ += EncodeFrame(
            RenderSwapAck(snapshot.version(), snapshot.source()));
      } else {
        output_ += EncodeFrame(RenderError(swapped.status()));
      }
      continue;
    }
    // Admission happens per request at parse time, against the budget
    // shared by every connection: past the budget, shed with a typed
    // "overloaded" error (a barrier, to keep responses in request order)
    // instead of queueing unboundedly.
    if (options_.admission != nullptr && !options_.admission->TryAcquire(1)) {
      static Counter* shed = MetricsRegistry::Global().GetCounter(
          "serve/shed_requests", MetricClass::kScheduling);
      shed->Increment();
      FlushBatch(&batch);
      output_ += EncodeFrame(RenderError(Status::Unavailable(
          "pending-request budget exhausted; request shed")));
      continue;
    }
    batch.push_back({request.query, options_.now_ms()});
  }
  FlushBatch(&batch);
  if (decoder_.framing_error()) {
    static Counter* violations = MetricsRegistry::Global().GetCounter(
        "serve/framing_violations", MetricClass::kDeterministic);
    violations->Increment();
    output_ += EncodeFrame(RenderError(
        Status::InvalidArgument(decoder_.framing_error_message())));
    closed_ = true;
  }
}

void ServeSession::FlushBatch(std::vector<PendingQuery>* batch) {
  if (batch->empty()) return;
  // Deadline check happens once, at execution admission: a request whose
  // wire-carried budget expired while it sat behind the batch (or a swap
  // barrier) answers "deadline_exceeded" and never reaches the engine.
  const double now = options_.now_ms();
  std::vector<QueryRequest> runnable;
  std::vector<int> slot(batch->size(), -1);
  for (size_t i = 0; i < batch->size(); ++i) {
    const PendingQuery& pending = (*batch)[i];
    if (pending.query.deadline_ms > 0 &&
        now - pending.arrival_ms >= pending.query.deadline_ms) {
      static Counter* expired = MetricsRegistry::Global().GetCounter(
          "serve/deadline_expired_requests", MetricClass::kScheduling);
      expired->Increment();
      continue;
    }
    slot[i] = static_cast<int>(runnable.size());
    runnable.push_back(pending.query);
  }

  std::vector<QueryResult> results;
  if (runnable.size() == 1) {
    results.push_back(service_->engine().Execute(runnable.front()));
  } else if (!runnable.empty()) {
    static Counter* batched = MetricsRegistry::Global().GetCounter(
        "serve/batched_queries", MetricClass::kDeterministic);
    batched->Add(runnable.size());
    results = service_->engine().ExecuteBatch(runnable);
  }
  for (size_t i = 0; i < batch->size(); ++i) {
    if (slot[i] < 0) {
      const PendingQuery& pending = (*batch)[i];
      output_ += EncodeFrame(RenderError(Status::DeadlineExceeded(
          "request deadline (" + std::to_string(pending.query.deadline_ms) +
          " ms) expired before execution")));
      continue;
    }
    const QueryResult& result = results[static_cast<size_t>(slot[i])];
    output_ += EncodeFrame(result.ok() ? RenderResponse(result.response)
                                       : RenderError(result.status));
  }
  if (options_.admission != nullptr)
    options_.admission->Release(static_cast<int>(batch->size()));
  batch->clear();
}

std::string ServeSession::TakeOutput() {
  std::string out;
  out.swap(output_);
  return out;
}

}  // namespace aneci::serve

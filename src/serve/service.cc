#include "serve/service.h"

#include <utility>
#include <vector>

#include "util/metrics.h"

namespace aneci::serve {

EmbedService::EmbedService(std::shared_ptr<const ModelSnapshot> initial,
                           Env* env)
    : engine_(initial), env_(env ? env : Env::Default()),
      next_version_(initial ? initial->version() + 1 : 1) {}

StatusOr<std::shared_ptr<const ModelSnapshot>> EmbedService::SwapFromFile(
    const std::string& path) {
  static Counter* failures = MetricsRegistry::Global().GetCounter(
      "serve/swap_failures", MetricClass::kDeterministic);
  // Load and validate BEFORE touching the active snapshot: a corrupt or
  // missing artifact must leave the old model serving untouched.
  auto loaded = ModelSnapshot::Load(
      path, next_version_.fetch_add(1, std::memory_order_relaxed), env_);
  if (!loaded.ok()) {
    failures->Increment();
    return loaded.status();
  }
  std::shared_ptr<const ModelSnapshot> snapshot = std::move(loaded).value();
  engine_.Swap(snapshot);
  return snapshot;
}

uint64_t EmbedService::next_version() const {
  return next_version_.load(std::memory_order_relaxed);
}

void ServeSession::Consume(std::string_view bytes) {
  if (closed_) return;
  decoder_.Feed(bytes);
  // Pipelined query frames that arrived together are executed as one batch
  // through the thread pool; swap and error frames are ordering barriers,
  // so every response still lands in request order.
  std::vector<QueryRequest> batch;
  std::string body;
  while (decoder_.Next(&body)) {
    auto parsed = ParseWireRequest(body);
    if (!parsed.ok()) {
      static Counter* bad_requests = MetricsRegistry::Global().GetCounter(
          "serve/bad_requests", MetricClass::kDeterministic);
      bad_requests->Increment();
      FlushBatch(&batch);
      output_ += EncodeFrame(RenderError(parsed.status()));
      continue;
    }
    const WireRequest& request = parsed.value();
    if (request.kind == WireRequest::Kind::kSwap) {
      FlushBatch(&batch);  // Queries before the swap answer pre-swap.
      auto swapped = service_->SwapFromFile(request.swap_path);
      if (swapped.ok()) {
        const auto& snapshot = *swapped.value();
        output_ += EncodeFrame(
            RenderSwapAck(snapshot.version(), snapshot.source()));
      } else {
        output_ += EncodeFrame(RenderError(swapped.status()));
      }
      continue;
    }
    batch.push_back(request.query);
  }
  FlushBatch(&batch);
  if (decoder_.framing_error()) {
    static Counter* violations = MetricsRegistry::Global().GetCounter(
        "serve/framing_violations", MetricClass::kDeterministic);
    violations->Increment();
    output_ += EncodeFrame(RenderError(
        Status::InvalidArgument(decoder_.framing_error_message())));
    closed_ = true;
  }
}

void ServeSession::FlushBatch(std::vector<QueryRequest>* batch) {
  if (batch->empty()) return;
  if (batch->size() == 1) {
    const QueryResult result = service_->engine().Execute(batch->front());
    output_ += EncodeFrame(result.ok() ? RenderResponse(result.response)
                                       : RenderError(result.status));
  } else {
    static Counter* batched = MetricsRegistry::Global().GetCounter(
        "serve/batched_queries", MetricClass::kDeterministic);
    batched->Add(batch->size());
    for (const QueryResult& result : service_->engine().ExecuteBatch(*batch))
      output_ += EncodeFrame(result.ok() ? RenderResponse(result.response)
                                         : RenderError(result.status));
  }
  batch->clear();
}

std::string ServeSession::TakeOutput() {
  std::string out;
  out.swap(output_);
  return out;
}

}  // namespace aneci::serve

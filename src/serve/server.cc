#include "serve/server.h"

#include <chrono>
#include <utility>

#include "util/metrics.h"

namespace aneci::serve {
namespace {

constexpr size_t kReadChunkBytes = 64 * 1024;
/// Write budget for the one-frame shed/kill notifications sent to clients
/// that may not be reading: short, so neither the acceptor thread nor a
/// dying connection thread can be parked by an unresponsive peer.
constexpr int kNotifyWriteDeadlineMs = 250;

Gauge* ActiveConnectionsGauge() {
  static Gauge* gauge = MetricsRegistry::Global().GetGauge(
      "serve/active_connections", MetricClass::kScheduling);
  return gauge;
}

}  // namespace

EmbedServer::EmbedServer(EmbedService* service, ServerOptions options,
                         SocketIo* io)
    : service_(service),
      options_(options),
      io_(io != nullptr ? io : SocketIo::Default()),
      admission_(options.max_pending_requests) {}

EmbedServer::~EmbedServer() { Stop(); }

Status EmbedServer::Start(int port) {
  ANECI_ASSIGN_OR_RETURN(listener_, io_->Listen(port, &port_));
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void EmbedServer::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller (or a Stop() racing the destructor): wait for the
    // first Stop() to finish.
    std::unique_lock<std::mutex> lock(mu_);
    stopped_cv_.wait(lock, [this] { return stopped_; });
    return;
  }
  // shutdown() — not close() — is what unblocks a thread parked in accept()
  // on Linux (the accept fails with EINVAL); a plain close() would leave the
  // acceptor blocked until the next client happened to connect. On a
  // never-started server the listener is invalid and this is a harmless
  // EBADF.
  (void)io_->ShutdownBoth(listener_);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  std::vector<Connection> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  // Graceful drain: half-close the read side of every live connection, so
  // a thread parked in recv() sees EOF, finishes whatever request is in
  // flight, flushes its responses, and exits on its own.
  for (Connection& c : connections)
    if (c.socket) (void)io_->ShutdownRead(*c.socket);
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait_for(lock,
                       std::chrono::milliseconds(
                           options_.drain_timeout_ms > 0
                               ? options_.drain_timeout_ms
                               : 0),
                       [this] { return active_ == 0; });
  }
  // Hard phase: whatever outlived the drain window (e.g. a thread blocked
  // writing to a peer that stopped reading) gets both directions shut, then
  // the joins complete.
  for (Connection& c : connections)
    if (c.socket && !c.done->load(std::memory_order_acquire))
      (void)io_->ShutdownBoth(*c.socket);
  for (Connection& c : connections)
    if (c.thread.joinable()) c.thread.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void EmbedServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stopped_cv_.wait(lock, [this] { return stopped_; });
}

int EmbedServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void EmbedServer::SetActiveLocked(int delta) {
  active_ += delta;
  ActiveConnectionsGauge()->Set(active_);
}

void EmbedServer::ShedConnection(SocketFd socket) {
  static Counter* shed = MetricsRegistry::Global().GetCounter(
      "serve/shed_connections", MetricClass::kScheduling);
  shed->Increment();
  (void)io_->WriteAll(
      socket,
      EncodeFrame(RenderError(Status::Unavailable(
          "connection limit (" + std::to_string(options_.max_connections) +
          ") reached; connection shed"))),
      kNotifyWriteDeadlineMs);
  // socket closes on scope exit: the client sees one typed frame, then EOF.
}

void EmbedServer::AcceptLoop() {
  static Counter* accepted = MetricsRegistry::Global().GetCounter(
      "serve/connections", MetricClass::kDeterministic);
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto conn = io_->Accept(listener_);
    if (!conn.ok()) {
      // Listener closed (shutdown) or transient failure; both end the loop
      // on shutdown, transient errors just drop that one connection.
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;
    }
    accepted->Increment();
    auto socket = std::make_shared<SocketFd>(std::move(conn).value());
    auto done = std::make_shared<std::atomic<bool>>(false);
    // Admission runs in one lexical critical section (no conditional
    // unlock): the shed path only records its decision under the lock and
    // writes the rejection frame after releasing it.
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load(std::memory_order_relaxed)) return;  // late arrival
      ReapFinishedConnectionsLocked();
      if (options_.max_connections <= 0 ||
          active_ < options_.max_connections) {
        admitted = true;
        SetActiveLocked(1);
        Connection c;
        c.socket = socket;
        c.done = done;
        c.thread = std::thread([this, socket, done] {
          ConnectionLoop(socket);
          // Terminate the connection so the peer sees EOF now; the fd
          // itself is closed when the acceptor (or Stop) reaps this entry.
          // shutdown() only reads the fd, so a concurrent ShutdownBoth from
          // Stop() is safe.
          (void)io_->ShutdownBoth(*socket);
          {
            std::lock_guard<std::mutex> inner(mu_);
            SetActiveLocked(-1);
          }
          // `done` flips only after the mu_ section: the acceptor joins
          // done threads while HOLDING mu_, so nothing past this store may
          // touch the lock or the join deadlocks (caught by the chaos sweep
          // under TSan).
          done->store(true, std::memory_order_release);
          drain_cv_.notify_all();
        });
        connections_.push_back(std::move(c));
      }
    }
    if (!admitted) {
      // Admission control: answer over-cap connects immediately with a
      // typed rejection instead of letting fds (and threads) accumulate
      // until the OS runs out.
      ShedConnection(std::move(*socket));
    }
  }
}

void EmbedServer::ReapFinishedConnectionsLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      it->thread.join();  // already exited; join returns immediately
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void EmbedServer::ConnectionLoop(std::shared_ptr<SocketFd> connection) {
  static Counter* dirty = MetricsRegistry::Global().GetCounter(
      "serve/mid_frame_disconnects", MetricClass::kDeterministic);
  static Counter* deadline_kills = MetricsRegistry::Global().GetCounter(
      "serve/deadline_kills", MetricClass::kScheduling);
  SessionOptions session_options;
  if (options_.max_pending_requests > 0)
    session_options.admission = &admission_;
  ServeSession session(service_, std::move(session_options));
  while (true) {
    auto chunk =
        io_->Read(*connection, kReadChunkBytes, options_.read_deadline_ms);
    if (!chunk.ok()) {
      if (chunk.status().code() == StatusCode::kDeadlineExceeded) {
        // Slow-loris reaping: tell the peer why (bounded write, it may not
        // be reading), then drop the connection.
        deadline_kills->Increment();
        (void)io_->WriteAll(
            *connection,
            EncodeFrame(RenderError(Status::DeadlineExceeded(
                "connection read deadline (" +
                std::to_string(options_.read_deadline_ms) +
                " ms) exceeded; closing"))),
            kNotifyWriteDeadlineMs);
      }
      return;  // reset by peer etc.; nothing to flush
    }
    const bool eof = chunk.value().empty();
    if (!eof) session.Consume(chunk.value());
    const std::string out = session.TakeOutput();
    if (!out.empty() &&
        !io_->WriteAll(*connection, out, options_.write_deadline_ms).ok())
      return;
    if (session.closed()) return;  // framing violation: error frame sent
    if (eof) {
      if (session.mid_frame()) dirty->Increment();
      return;
    }
  }
}

}  // namespace aneci::serve

#include "serve/server.h"

#include <condition_variable>
#include <utility>

#include "util/metrics.h"

namespace aneci::serve {
namespace {

constexpr size_t kReadChunkBytes = 64 * 1024;

}  // namespace

EmbedServer::~EmbedServer() { Stop(); }

Status EmbedServer::Start(int port) {
  ANECI_ASSIGN_OR_RETURN(listener_, ListenOnLoopback(port, &port_));
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void EmbedServer::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller: just wait for the first Stop() to finish.
    std::unique_lock<std::mutex> lock(mu_);
    stopped_cv_.wait(lock, [this] { return stopped_; });
    return;
  }
  // shutdown() — not close() — is what unblocks a thread parked in accept()
  // on Linux (the accept fails with EINVAL); a plain close() would leave the
  // acceptor blocked until the next client happened to connect.
  (void)ShutdownBoth(listener_);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  std::vector<Connection> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  // Connection threads may be parked in recv() on clients that are still
  // connected; shutting the sockets down (both directions) unblocks them,
  // then the joins complete.
  for (Connection& c : connections)
    if (c.socket) (void)ShutdownBoth(*c.socket);
  for (Connection& c : connections)
    if (c.thread.joinable()) c.thread.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void EmbedServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stopped_cv_.wait(lock, [this] { return stopped_; });
}

void EmbedServer::AcceptLoop() {
  static Counter* accepted = MetricsRegistry::Global().GetCounter(
      "serve/connections", MetricClass::kDeterministic);
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto conn = AcceptConnection(listener_);
    if (!conn.ok()) {
      // Listener closed (shutdown) or transient failure; both end the loop
      // on shutdown, transient errors just drop that one connection.
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;
    }
    accepted->Increment();
    auto socket = std::make_shared<SocketFd>(std::move(conn).value());
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) return;  // refuse late arrivals
    ReapFinishedConnectionsLocked();
    Connection c;
    c.socket = socket;
    c.done = done;
    c.thread = std::thread([this, socket, done] {
      ConnectionLoop(socket);
      // Terminate the connection so the peer sees EOF now; the fd itself is
      // closed when the acceptor (or Stop) reaps this entry. shutdown() only
      // reads the fd, so a concurrent ShutdownBoth from Stop() is safe.
      (void)ShutdownBoth(*socket);
      done->store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(c));
  }
}

void EmbedServer::ReapFinishedConnectionsLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      it->thread.join();  // already exited; join returns immediately
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void EmbedServer::ConnectionLoop(std::shared_ptr<SocketFd> connection) {
  static Counter* dirty = MetricsRegistry::Global().GetCounter(
      "serve/mid_frame_disconnects", MetricClass::kDeterministic);
  ServeSession session(service_);
  while (true) {
    auto chunk = SocketRead(*connection, kReadChunkBytes);
    if (!chunk.ok()) return;  // reset by peer etc.; nothing to flush
    const bool eof = chunk.value().empty();
    if (!eof) session.Consume(chunk.value());
    const std::string out = session.TakeOutput();
    if (!out.empty() && !SocketWriteAll(*connection, out).ok()) return;
    if (session.closed()) return;  // framing violation: error frame sent
    if (eof) {
      if (session.mid_frame()) dirty->Increment();
      return;
    }
  }
}

}  // namespace aneci::serve

// EmbedServer: the socket pump around EmbedService. One acceptor thread
// plus one thread per live connection, each running a ServeSession state
// machine over blocking reads. All protocol and query logic lives in the
// socket-free layers below (service.h / query_engine.h); this file only
// moves bytes.
#ifndef ANECI_SERVE_SERVER_H_
#define ANECI_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "serve/socket_io.h"
#include "util/status.h"

namespace aneci::serve {

class EmbedServer {
 public:
  /// Serves `service` (not owned; must outlive the server).
  explicit EmbedServer(EmbedService* service) : service_(service) {}
  ~EmbedServer();

  EmbedServer(const EmbedServer&) = delete;
  EmbedServer& operator=(const EmbedServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the acceptor thread.
  Status Start(int port);

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Stops accepting, closes the listener, and joins every connection
  /// thread. Safe to call twice; called by the destructor.
  void Stop();

  /// Blocks until Stop() is called from another thread (the CLI's serve
  /// subcommand parks its main thread here).
  void Wait();

 private:
  struct Connection {
    std::thread thread;
    std::shared_ptr<SocketFd> socket;  // shared with the thread, for Stop()
    /// Set by the connection thread when its loop exits; the acceptor reaps
    /// (joins and erases) done connections so fds don't accumulate.
    std::shared_ptr<std::atomic<bool>> done;
  };

  void AcceptLoop();
  void ReapFinishedConnectionsLocked();
  void ConnectionLoop(std::shared_ptr<SocketFd> connection);

  EmbedService* const service_;
  SocketFd listener_;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex mu_;  // guards connections_ and stopped_
  std::vector<Connection> connections_;  // unwound and joined by Stop()
  std::condition_variable stopped_cv_;
  bool stopped_ = false;
};

}  // namespace aneci::serve

#endif  // ANECI_SERVE_SERVER_H_

// EmbedServer: the socket pump around EmbedService. One acceptor thread
// plus one thread per live connection, each running a ServeSession state
// machine over blocking reads. All protocol and query logic lives in the
// socket-free layers below (service.h / query_engine.h); this file only
// moves bytes.
//
// Resilience (docs/serving.md §6): a connection cap with admission control
// (the cap+1-th client gets a typed "overloaded" frame, never a hang), a
// bounded pending-request budget shared across connections, per-connection
// read/write deadlines that reap slow-loris peers with a typed
// "deadline_exceeded" frame, and a graceful drain on Stop() — stop
// accepting, half-close reads so in-flight work finishes, then hard-close
// whatever outlives the drain timeout.
#ifndef ANECI_SERVE_SERVER_H_
#define ANECI_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "serve/socket_io.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace aneci::serve {

/// Server resilience knobs. The defaults keep a misbehaving client fleet
/// from taking the process down while staying invisible to well-behaved
/// traffic; every limit is surfaced through the metrics registry.
struct ServerOptions {
  /// Hard cap on concurrently served connections. The cap+1-th connect is
  /// answered with one "overloaded" error frame and closed (a typed
  /// rejection, not a hang), counted by serve/shed_connections. <= 0 means
  /// uncapped.
  int max_connections = 64;
  /// Per-connection socket read deadline: an idle or byte-dribbling peer is
  /// reaped after this long with a "deadline_exceeded" frame
  /// (serve/deadline_kills). <= 0 disables (block forever).
  int read_deadline_ms = 0;
  /// Per-connection bound on each blocked wait while writing a response to
  /// a peer that stopped draining. <= 0 disables.
  int write_deadline_ms = 0;
  /// Shared bound on admitted-but-unexecuted requests across every
  /// connection; past it, requests shed with "overloaded"
  /// (serve/shed_requests). <= 0 means unbounded.
  int max_pending_requests = 0;
  /// Stop() grace window: after the listener closes, in-flight connections
  /// get this long to finish (reads are half-closed so their threads see
  /// EOF); survivors are then hard-closed.
  int drain_timeout_ms = 2000;
};

class EmbedServer {
 public:
  /// Serves `service` (not owned; must outlive the server) over `io`
  /// (nullptr = SocketIo::Default(); inject a FaultInjectingSocketIo to
  /// chaos-test the server's own transport).
  explicit EmbedServer(EmbedService* service, ServerOptions options = {},
                       SocketIo* io = nullptr);
  ~EmbedServer();

  EmbedServer(const EmbedServer&) = delete;
  EmbedServer& operator=(const EmbedServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the acceptor thread.
  Status Start(int port);

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Stops accepting, drains in-flight connections (bounded by
  /// drain_timeout_ms), and joins every connection thread. Safe to call
  /// twice, before Start(), and from the destructor.
  void Stop();

  /// Blocks until Stop() is called from another thread (the CLI's serve
  /// subcommand parks its main thread here).
  void Wait();

  /// Live connection count (the serve/active_connections gauge mirrors
  /// this; both return to 0 after Stop()).
  int active_connections() const;

 private:
  struct Connection {
    std::thread thread;
    std::shared_ptr<SocketFd> socket;  // shared with the thread, for Stop()
    /// Set by the connection thread when its loop exits; the acceptor reaps
    /// (joins and erases) done connections so fds don't accumulate.
    std::shared_ptr<std::atomic<bool>> done;
  };

  void AcceptLoop();
  void ReapFinishedConnectionsLocked() ANECI_REQUIRES(mu_);
  void ConnectionLoop(std::shared_ptr<SocketFd> connection);
  /// Answers an over-cap connect with one typed "overloaded" frame and
  /// closes it. Runs on the acceptor thread with a short write budget so a
  /// non-reading client cannot stall accepts.
  void ShedConnection(SocketFd socket);
  void SetActiveLocked(int delta) ANECI_REQUIRES(mu_);

  EmbedService* const service_;
  const ServerOptions options_;
  SocketIo* const io_;
  AdmissionController admission_;
  SocketFd listener_;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  mutable std::mutex mu_;
  /// Unwound and joined by Stop().
  std::vector<Connection> connections_ ANECI_GUARDED_BY(mu_);
  /// Connection threads spawned and not yet exited.
  int active_ ANECI_GUARDED_BY(mu_) = 0;
  std::condition_variable drain_cv_;  ///< signalled as active_ falls
  std::condition_variable stopped_cv_;
  bool stopped_ ANECI_GUARDED_BY(mu_) = false;
};

}  // namespace aneci::serve

#endif  // ANECI_SERVE_SERVER_H_

#include "serve/client.h"

#include <utility>

namespace aneci::serve {
namespace {

constexpr size_t kReadChunkBytes = 64 * 1024;

}  // namespace

StatusOr<ServeClient> ServeClient::Connect(int port) {
  ANECI_ASSIGN_OR_RETURN(SocketFd socket, ConnectToLoopback(port));
  return ServeClient(std::move(socket));
}

StatusOr<std::string> ServeClient::Call(std::string_view request_body) {
  ANECI_RETURN_IF_ERROR(SendRaw(EncodeFrame(request_body)));
  return ReadFrame();
}

Status ServeClient::SendRaw(std::string_view bytes) {
  return SocketWriteAll(socket_, bytes);
}

StatusOr<std::string> ServeClient::ReadFrame() {
  std::string body;
  while (true) {
    if (decoder_.Next(&body)) return body;
    if (decoder_.framing_error())
      return Status::IoError("response framing error: " +
                             decoder_.framing_error_message());
    ANECI_ASSIGN_OR_RETURN(const std::string chunk,
                           SocketRead(socket_, kReadChunkBytes));
    if (chunk.empty())
      return Status::IoError("connection closed before a full response");
    decoder_.Feed(chunk);
  }
}

Status ServeClient::FinishRequests() { return ShutdownWrite(socket_); }

}  // namespace aneci::serve

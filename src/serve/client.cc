#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/metrics.h"
#include "util/rng.h"

namespace aneci::serve {
namespace {

constexpr size_t kReadChunkBytes = 64 * 1024;

/// Capped exponential backoff with deterministic jitter: the lower half of
/// the window is guaranteed, the upper half is drawn from `rng`.
void SleepBackoff(int attempt, const RetryPolicy& policy, Rng* rng) {
  int backoff = policy.initial_backoff_ms;
  for (int i = 1; i < attempt && backoff < policy.max_backoff_ms; ++i)
    backoff *= 2;
  backoff = std::clamp(backoff, 1, std::max(1, policy.max_backoff_ms));
  const int jittered =
      backoff / 2 +
      static_cast<int>(rng->NextU64() % static_cast<uint64_t>(backoff / 2 + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
}

/// A typed "overloaded" shed frame: rejected before execution, so retrying
/// is safe for any op.
bool IsOverloadedReply(std::string_view body) {
  return body.rfind("{\"ok\":false", 0) == 0 &&
         body.find("\"code\":\"overloaded\"") != std::string_view::npos;
}

}  // namespace

StatusOr<ServeClient> ServeClient::Connect(int port, SocketIo* io) {
  if (io == nullptr) io = SocketIo::Default();
  ANECI_ASSIGN_OR_RETURN(SocketFd socket, io->Connect(port));
  return ServeClient(port, io, std::move(socket));
}

StatusOr<std::string> ServeClient::Call(std::string_view request_body) {
  ANECI_RETURN_IF_ERROR(SendRaw(EncodeFrame(request_body)));
  return ReadFrame();
}

StatusOr<std::string> ServeClient::CallWithRetry(std::string_view request_body,
                                                 const RetryPolicy& policy) {
  static Counter* retries = MetricsRegistry::Global().GetCounter(
      "serve/client_retries", MetricClass::kScheduling);
  static Counter* reconnects = MetricsRegistry::Global().GetCounter(
      "serve/client_reconnects", MetricClass::kScheduling);
  // Only queries are idempotent; a swap that errored mid-flight may still
  // have executed server-side (the version advanced), so by default it gets
  // exactly one transport attempt. Unparseable bodies are safe: the server
  // answers them with an error frame without executing anything.
  bool idempotent = true;
  if (auto parsed = ParseWireRequest(request_body);
      parsed.ok() && parsed.value().kind == WireRequest::Kind::kSwap)
    idempotent = policy.retry_non_idempotent;

  Rng rng(policy.jitter_seed);
  const int attempts = std::max(1, policy.max_attempts);
  Status last = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      retries->Increment();
      SleepBackoff(attempt - 1, policy, &rng);
    }
    if (!socket_.valid()) {
      auto socket = io_->Connect(port_);
      if (!socket.ok()) {
        last = socket.status();
        continue;
      }
      socket_ = std::move(socket).value();
      decoder_ = FrameDecoder();
      reconnects->Increment();
    }
    StatusOr<std::string> reply = Call(request_body);
    if (!reply.ok()) {
      last = reply.status();
      // Transport state is unknown (a response may be half-delivered);
      // drop the connection so the next attempt starts clean.
      socket_.Close();
      decoder_ = FrameDecoder();
      if (!idempotent)
        return Status(last.code(),
                      "non-idempotent request not retried after transport "
                      "error: " +
                          last.message());
      continue;
    }
    if (IsOverloadedReply(reply.value())) {
      last = Status::Unavailable("request shed by server: " + reply.value());
      continue;
    }
    return reply;
  }
  return Status(last.ok() ? StatusCode::kUnavailable : last.code(),
                "exhausted " + std::to_string(attempts) +
                    " attempts: " + (last.ok() ? "no attempt ran"
                                               : last.message()));
}

Status ServeClient::SendRaw(std::string_view bytes) {
  return io_->WriteAll(socket_, bytes);
}

StatusOr<std::string> ServeClient::ReadFrame() {
  std::string body;
  while (true) {
    if (decoder_.Next(&body)) return body;
    if (decoder_.framing_error())
      return Status::IoError("response framing error: " +
                             decoder_.framing_error_message());
    ANECI_ASSIGN_OR_RETURN(const std::string chunk,
                           io_->Read(socket_, kReadChunkBytes));
    if (chunk.empty())
      return Status::IoError("connection closed before a full response");
    decoder_.Feed(chunk);
  }
}

Status ServeClient::FinishRequests() { return io_->ShutdownWrite(socket_); }

}  // namespace aneci::serve

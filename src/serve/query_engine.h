// Online query execution over a hot-swappable ModelSnapshot.
//
// Concurrency contract (docs/serving.md §3):
//  * Execute() pins the active snapshot ONCE (one shared_ptr copy under a
//    brief mutex) and answers the whole query from that one pin — every
//    field of a response is consistent with exactly one snapshot version,
//    never a mix (the hot-swap concurrency test hammers this under TSan).
//  * Swap() publishes a new snapshot with a single pointer exchange under
//    the same mutex. Readers holding the old snapshot keep it alive through
//    their shared_ptr; the old model is destroyed when its last in-flight
//    query finishes. The critical section is a pointer copy either way —
//    never a query, never an artifact load.
//
// The holder is a mutex-guarded shared_ptr rather than
// std::atomic<std::shared_ptr>: libstdc++ 12's _Sp_atomic unlocks load()
// with a relaxed fetch_sub, so the internal _M_ptr handoff to a subsequent
// swap() has no happens-before edge — benign on x86 but a model-level data
// race that ThreadSanitizer (correctly) reports. A futex-backed mutex
// costs one uncontended CAS each way and is understood by every sanitizer.
//  * ExecuteBatch() fans a pipelined batch across the process thread pool
//    (grain 1, disjoint result slots). k-NN inside a batch runs serially per
//    request (nested-parallelism fallback); a standalone k-NN parallelises
//    its distance scan. Both orderings are bit-identical by the pool's
//    determinism contract.
#ifndef ANECI_SERVE_QUERY_ENGINE_H_
#define ANECI_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/model_snapshot.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace aneci::serve {

enum class QueryOp {
  kLookup,     ///< Embedding row of one node.
  kKnn,        ///< k nearest nodes by cosine similarity over Z.
  kClassify,   ///< Label-head argmax class + probabilities.
  kAnomaly,    ///< Membership-entropy anomaly score.
  kCommunity,  ///< Hard community id + soft membership row.
  kStats,      ///< Snapshot metadata (version, shape, source).
};

/// "lookup", "knn", ... — the wire `op` field and the metric-name suffix.
const char* QueryOpName(QueryOp op);

struct QueryRequest {
  QueryOp op = QueryOp::kStats;
  int id = -1;  ///< Node id; required by every op except stats.
  int k = 10;   ///< k-NN fan-out; clamped to [1, num_nodes - 1].
  /// Wire-carried per-request deadline in ms (0 = none). Enforced by the
  /// session layer at execution-admission time, not by the engine: a
  /// request whose budget expired while queued behind a batch or a swap is
  /// answered with a typed "deadline_exceeded" error instead of running.
  int deadline_ms = 0;
};

struct Neighbor {
  int id = 0;
  double score = 0.0;  ///< Cosine similarity in [-1, 1].
};

/// One answered query. Only the fields of the echoed `op` are populated.
struct QueryResponse {
  uint64_t snapshot_version = 0;
  QueryOp op = QueryOp::kStats;
  int id = -1;

  std::vector<double> embedding;    // lookup
  std::vector<Neighbor> neighbors;  // knn
  int label = -1;                   // classify
  std::vector<double> proba;        // classify
  double anomaly_score = 0.0;       // anomaly
  int community = -1;               // community
  std::vector<double> membership;   // community

  // stats
  int num_nodes = 0;
  int embed_dim = 0;
  int num_classes = 0;
  std::string source;
};

/// Execute's result: `status` carries per-query failures (out-of-range id,
/// classify without a label head) so batch slots stay value-typed.
struct QueryResult {
  Status status;
  QueryResponse response;
  bool ok() const { return status.ok(); }
};

class QueryEngine {
 public:
  explicit QueryEngine(std::shared_ptr<const ModelSnapshot> initial);

  /// Pins the active snapshot (one shared_ptr copy under the mutex).
  std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// Publishes `next` as the active snapshot; a single pointer exchange
  /// under the mutex. Returns the snapshot that was displaced.
  std::shared_ptr<const ModelSnapshot> Swap(
      std::shared_ptr<const ModelSnapshot> next);

  /// Answers one query from a single snapshot pin. Thread-safe; never
  /// throws on bad input — malformed requests come back as a Status.
  QueryResult Execute(const QueryRequest& request) const;

  /// Answers a pipelined batch through the thread pool; slot i answers
  /// request i. Requests may be served by different snapshot versions if a
  /// swap lands mid-batch (each response reports the version it used).
  std::vector<QueryResult> ExecuteBatch(
      const std::vector<QueryRequest>& requests) const;

 private:
  QueryResult ExecuteOn(const ModelSnapshot& snapshot,
                        const QueryRequest& request) const;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ModelSnapshot> snapshot_ ANECI_GUARDED_BY(snapshot_mu_);
};

}  // namespace aneci::serve

#endif  // ANECI_SERVE_QUERY_ENGINE_H_

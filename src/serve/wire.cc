#include "serve/wire.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/byteio.h"
#include "util/metrics.h"

namespace aneci::serve {

std::string EncodeFrame(std::string_view body) {
  std::string frame;
  frame.reserve(4 + body.size());
  PutScalarLe<uint32_t>(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (framing_error_) return;
  // Compact lazily: drop consumed bytes once they dominate the buffer so a
  // long-lived connection doesn't grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

bool FrameDecoder::Next(std::string* body) {
  if (framing_error_) return false;
  if (buffer_.size() - consumed_ < 4) return false;
  uint32_t length = 0;
  for (size_t i = 0; i < 4; ++i)
    length |= static_cast<uint32_t>(
                  static_cast<uint8_t>(buffer_[consumed_ + i]))
              << (8 * i);
  if (length == 0 || length > kMaxFrameBytes) {
    framing_error_ = true;
    error_message_ = "frame length " + std::to_string(length) +
                     " outside [1, " + std::to_string(kMaxFrameBytes) + "]";
    return false;
  }
  if (buffer_.size() - consumed_ - 4 < length) return false;
  body->assign(buffer_, consumed_ + 4, length);
  consumed_ += 4 + length;
  return true;
}

namespace {

/// Recursive-descent parser for one flat JSON object. Tracks position for
/// error messages; all failures are Status, never exceptions.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view body) : body_(body) {}

  StatusOr<std::map<std::string, JsonValue>> Parse() {
    std::map<std::string, JsonValue> object;
    SkipSpace();
    if (!Consume('{')) return Fail("expected '{'");
    SkipSpace();
    if (Consume('}')) return Finish(std::move(object));
    while (true) {
      SkipSpace();
      std::string key;
      ANECI_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':' after key \"" + key + "\"");
      SkipSpace();
      JsonValue value;
      ANECI_RETURN_IF_ERROR(ParseScalar(key, &value));
      if (!object.emplace(key, std::move(value)).second)
        return Fail("duplicate key \"" + key + "\"");
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Finish(std::move(object));
      return Fail("expected ',' or '}'");
    }
  }

 private:
  StatusOr<std::map<std::string, JsonValue>> Finish(
      std::map<std::string, JsonValue> object) {
    SkipSpace();
    if (pos_ != body_.size()) return Fail("trailing bytes after object");
    return object;
  }

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("malformed JSON at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < body_.size() &&
           (body_[pos_] == ' ' || body_[pos_] == '\t' || body_[pos_] == '\n' ||
            body_[pos_] == '\r'))
      ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < body_.size() && body_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= body_.size()) return Fail("unterminated string");
      const char c = body_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20)
        return Fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= body_.size()) return Fail("dangling escape");
      const char esc = body_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (body_.size() - pos_ < 4) return Fail("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = body_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Fail("invalid \\u escape digit");
          }
          // Basic-multilingual-plane only; encode as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  Status ParseScalar(const std::string& key, JsonValue* out) {
    if (pos_ >= body_.size()) return Fail("missing value");
    const char c = body_[pos_];
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == '{' || c == '[')
      return Fail("nested values are not allowed (key \"" + key + "\")");
    if (c == 't' || c == 'f' || c == 'n') {
      static constexpr std::string_view kWords[] = {"true", "false", "null"};
      for (std::string_view word : kWords) {
        if (body_.substr(pos_, word.size()) == word) {
          pos_ += word.size();
          if (word == "null") {
            out->kind = JsonValue::Kind::kNull;
          } else {
            out->kind = JsonValue::Kind::kBool;
            out->bool_value = (word == "true");
          }
          return Status::OK();
        }
      }
      return Fail("invalid literal");
    }
    // Number: delegate validation to strtod over the JSON-legal charset.
    size_t end = pos_;
    while (end < body_.size() &&
           (std::isdigit(static_cast<unsigned char>(body_[end])) ||
            body_[end] == '-' || body_[end] == '+' || body_[end] == '.' ||
            body_[end] == 'e' || body_[end] == 'E'))
      ++end;
    if (end == pos_) return Fail("invalid value");
    const std::string text(body_.substr(pos_, end - pos_));
    char* parse_end = nullptr;
    const double value = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size() || !std::isfinite(value))
      return Fail("invalid number \"" + text + "\"");
    pos_ = end;
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::OK();
  }

  std::string_view body_;
  size_t pos_ = 0;
};

/// Extracts an integer field, rejecting non-numbers and non-integral values.
Status GetIntField(const std::map<std::string, JsonValue>& object,
                   const std::string& key, bool required, int* out) {
  auto it = object.find(key);
  if (it == object.end()) {
    if (required)
      return Status::InvalidArgument("missing required field \"" + key + "\"");
    return Status::OK();
  }
  if (it->second.kind != JsonValue::Kind::kNumber)
    return Status::InvalidArgument("field \"" + key + "\" must be a number");
  const double v = it->second.number_value;
  if (v != std::floor(v) || v < -2147483648.0 || v > 2147483647.0)
    return Status::InvalidArgument("field \"" + key +
                                   "\" must be a 32-bit integer");
  *out = static_cast<int>(v);
  return Status::OK();
}

}  // namespace

StatusOr<std::map<std::string, JsonValue>> ParseFlatJson(
    std::string_view body) {
  return FlatJsonParser(body).Parse();
}

StatusOr<WireRequest> ParseWireRequest(std::string_view body) {
  ANECI_ASSIGN_OR_RETURN(const auto object, ParseFlatJson(body));
  auto op_it = object.find("op");
  if (op_it == object.end())
    return Status::InvalidArgument("missing required field \"op\"");
  if (op_it->second.kind != JsonValue::Kind::kString)
    return Status::InvalidArgument("field \"op\" must be a string");
  const std::string& op = op_it->second.string_value;

  WireRequest request;
  if (op == "swap") {
    request.kind = WireRequest::Kind::kSwap;
    auto path_it = object.find("path");
    if (path_it == object.end() ||
        path_it->second.kind != JsonValue::Kind::kString ||
        path_it->second.string_value.empty())
      return Status::InvalidArgument(
          "swap requires a non-empty string field \"path\"");
    request.swap_path = path_it->second.string_value;
    return request;
  }

  request.kind = WireRequest::Kind::kQuery;
  if (op == "lookup") request.query.op = QueryOp::kLookup;
  else if (op == "knn") request.query.op = QueryOp::kKnn;
  else if (op == "classify") request.query.op = QueryOp::kClassify;
  else if (op == "anomaly") request.query.op = QueryOp::kAnomaly;
  else if (op == "community") request.query.op = QueryOp::kCommunity;
  else if (op == "stats") request.query.op = QueryOp::kStats;
  else
    return Status::InvalidArgument("unknown op \"" + op + "\"");

  if (request.query.op != QueryOp::kStats)
    ANECI_RETURN_IF_ERROR(
        GetIntField(object, "id", /*required=*/true, &request.query.id));
  if (request.query.op == QueryOp::kKnn) {
    ANECI_RETURN_IF_ERROR(
        GetIntField(object, "k", /*required=*/false, &request.query.k));
    if (request.query.k < 1)
      return Status::InvalidArgument("knn k must be a positive integer");
  }
  ANECI_RETURN_IF_ERROR(GetIntField(object, "deadline_ms", /*required=*/false,
                                    &request.query.deadline_ms));
  if (object.count("deadline_ms") && request.query.deadline_ms < 1)
    return Status::InvalidArgument("deadline_ms must be a positive integer");
  return request;
}

namespace {

void AppendDoubleArray(std::string* out, const char* key,
                       const std::vector<double>& values) {
  out->append(",\"").append(key).append("\":[");
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out->push_back(',');
    out->append(JsonDouble(values[i]));
  }
  out->push_back(']');
}

}  // namespace

std::string RenderResponse(const QueryResponse& response) {
  std::string out = "{\"ok\":true,\"op\":\"";
  out.append(QueryOpName(response.op));
  out.append("\",\"version\":").append(std::to_string(response.snapshot_version));
  if (response.op != QueryOp::kStats)
    out.append(",\"id\":").append(std::to_string(response.id));
  switch (response.op) {
    case QueryOp::kLookup:
      AppendDoubleArray(&out, "embedding", response.embedding);
      break;
    case QueryOp::kKnn: {
      out.append(",\"neighbors\":[");
      for (size_t i = 0; i < response.neighbors.size(); ++i) {
        if (i) out.push_back(',');
        out.append("{\"id\":")
            .append(std::to_string(response.neighbors[i].id))
            .append(",\"score\":")
            .append(JsonDouble(response.neighbors[i].score))
            .push_back('}');
      }
      out.push_back(']');
      break;
    }
    case QueryOp::kClassify:
      out.append(",\"label\":").append(std::to_string(response.label));
      AppendDoubleArray(&out, "proba", response.proba);
      break;
    case QueryOp::kAnomaly:
      out.append(",\"score\":").append(JsonDouble(response.anomaly_score));
      break;
    case QueryOp::kCommunity:
      out.append(",\"community\":").append(std::to_string(response.community));
      AppendDoubleArray(&out, "membership", response.membership);
      break;
    case QueryOp::kStats:
      out.append(",\"nodes\":").append(std::to_string(response.num_nodes));
      out.append(",\"dim\":").append(std::to_string(response.embed_dim));
      out.append(",\"classes\":").append(std::to_string(response.num_classes));
      out.append(",\"source\":\"")
          .append(JsonEscape(response.source))
          .push_back('"');
      break;
  }
  out.push_back('}');
  return out;
}

const char* WireErrorCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";  // unreachable from RenderError
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kUnavailable: return "overloaded";
  }
  return "internal";
}

std::string RenderError(const Status& status) {
  return std::string("{\"ok\":false,\"code\":\"") +
         WireErrorCode(status.code()) + "\",\"error\":\"" +
         JsonEscape(status.message()) + "\"}";
}

std::string RenderSwapAck(uint64_t version, const std::string& source) {
  return "{\"ok\":true,\"op\":\"swap\",\"version\":" + std::to_string(version) +
         ",\"source\":\"" + JsonEscape(source) + "\"}";
}

}  // namespace aneci::serve

#include "anomaly/outlier_injection.h"

#include <algorithm>

#include "util/check.h"

namespace aneci {
namespace {

// Rewires all of `node`'s edges to random nodes of other communities,
// preserving its degree.
void MakeStructuralOutlier(Graph* graph, int node, Rng& rng) {
  const std::vector<int> old_neighbors = graph->Neighbors(node);
  for (int v : old_neighbors) graph->RemoveEdge(node, v);
  const int n = graph->num_nodes();
  const bool labeled = graph->has_labels();
  const int own = labeled ? graph->labels()[node] : -1;
  int added = 0;
  int attempts = 0;
  while (added < static_cast<int>(old_neighbors.size()) && attempts++ < 50 * n) {
    const int v = static_cast<int>(rng.NextInt(n));
    if (v == node || graph->HasEdge(node, v)) continue;
    if (labeled && graph->labels()[v] == own) continue;
    graph->AddEdge(node, v);
    ++added;
  }
}

// Replaces `node`'s attributes with those of a random node of a different
// community.
void MakeAttributeOutlier(Graph* graph, int node, Rng& rng) {
  ANECI_CHECK(graph->has_attributes());
  const int n = graph->num_nodes();
  const bool labeled = graph->has_labels();
  const int own = labeled ? graph->labels()[node] : -1;
  for (int attempt = 0; attempt < 50 * n; ++attempt) {
    const int src = static_cast<int>(rng.NextInt(n));
    if (src == node) continue;
    if (labeled && graph->labels()[src] == own) continue;
    Matrix& x = graph->mutable_attributes();
    std::copy(x.RowPtr(src), x.RowPtr(src) + x.cols(), x.RowPtr(node));
    return;
  }
}

}  // namespace

const char* OutlierKindName(OutlierKind kind) {
  switch (kind) {
    case OutlierKind::kStructural:
      return "S";
    case OutlierKind::kAttribute:
      return "A";
    case OutlierKind::kCombined:
      return "S&A";
    case OutlierKind::kMix:
      return "Mix";
  }
  return "?";
}

OutlierInjectionResult InjectOutliers(const Graph& graph, OutlierKind kind,
                                      double fraction, Rng& rng) {
  ANECI_CHECK(fraction > 0.0 && fraction < 1.0);
  OutlierInjectionResult result;
  result.graph = graph;
  const int n = graph.num_nodes();
  result.is_outlier.assign(n, 0);

  const int count = std::max(1, static_cast<int>(n * fraction));
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  for (int i = n - 1; i > 0; --i) std::swap(order[i], order[rng.NextInt(i + 1)]);
  result.outlier_ids.assign(order.begin(), order.begin() + count);

  const bool has_attrs = graph.has_attributes();
  for (size_t idx = 0; idx < result.outlier_ids.size(); ++idx) {
    const int node = result.outlier_ids[idx];
    result.is_outlier[node] = 1;
    OutlierKind effective = kind;
    if (kind == OutlierKind::kMix) {
      switch (idx % 3) {
        case 0:
          effective = OutlierKind::kStructural;
          break;
        case 1:
          effective = OutlierKind::kAttribute;
          break;
        default:
          effective = OutlierKind::kCombined;
      }
    }
    if (!has_attrs &&
        (effective == OutlierKind::kAttribute ||
         effective == OutlierKind::kCombined)) {
      effective = OutlierKind::kStructural;
    }
    switch (effective) {
      case OutlierKind::kStructural:
        MakeStructuralOutlier(&result.graph, node, rng);
        break;
      case OutlierKind::kAttribute:
        MakeAttributeOutlier(&result.graph, node, rng);
        break;
      case OutlierKind::kCombined:
        MakeStructuralOutlier(&result.graph, node, rng);
        MakeAttributeOutlier(&result.graph, node, rng);
        break;
      case OutlierKind::kMix:
        break;  // Unreachable; resolved above.
    }
  }
  return result;
}

}  // namespace aneci

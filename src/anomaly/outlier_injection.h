// Community-outlier seeding following ONE (Bandyopadhyay et al., AAAI'19),
// the protocol AnECI adopts (Section V-C): planted outliers keep marginal
// statistics similar to normal nodes so they are not trivially detectable.
//  - Structural outlier: edges rewired to uniformly chosen nodes of *other*
//    communities, degree preserved.
//  - Attribute outlier: attribute vector replaced by that of a distant node
//    from another community, structure untouched.
//  - Combined outlier: both.
//  - Mix: equal thirds of each kind (the paper's 'Mix' setting).
#ifndef ANECI_ANOMALY_OUTLIER_INJECTION_H_
#define ANECI_ANOMALY_OUTLIER_INJECTION_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace aneci {

enum class OutlierKind {
  kStructural,
  kAttribute,
  kCombined,
  kMix,
};

const char* OutlierKindName(OutlierKind kind);

struct OutlierInjectionResult {
  Graph graph;                  ///< Graph with implanted outliers.
  std::vector<int> is_outlier;  ///< 1 per implanted node, 0 otherwise.
  std::vector<int> outlier_ids;
};

/// Implants `fraction` (the paper uses 5%) of the nodes as outliers of the
/// given kind. On graphs without attributes, attribute perturbation falls
/// back to structural rewiring (Polblogs-style identity features carry no
/// semantics to corrupt).
OutlierInjectionResult InjectOutliers(const Graph& graph, OutlierKind kind,
                                      double fraction, Rng& rng);

}  // namespace aneci

#endif  // ANECI_ANOMALY_OUTLIER_INJECTION_H_

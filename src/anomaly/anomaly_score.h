// Node anomaly scoring. AnECI scores by the entropy of the soft community
// membership (an outlier straddles communities, so its membership is
// high-entropy); embeddings without a native scoring scheme go through
// IsolationForest, matching the paper's protocol.
#ifndef ANECI_ANOMALY_ANOMALY_SCORE_H_
#define ANECI_ANOMALY_ANOMALY_SCORE_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace aneci {

/// AScore(i) = -sum_k p_i^k log p_i^k over the membership rows of `p`.
std::vector<double> MembershipEntropyScores(const Matrix& p);

/// Convenience: softmax the embedding rows first (the paper computes
/// p_i = softmax(z_i) before scoring).
std::vector<double> EmbeddingEntropyScores(const Matrix& z);

}  // namespace aneci

#endif  // ANECI_ANOMALY_ANOMALY_SCORE_H_

// Isolation Forest (Liu et al., ICDM'08): ensemble of random isolation
// trees; anomalies isolate in short paths. Used to derive anomaly scores
// from embeddings of methods without a native scoring scheme (Section VI-C).
#ifndef ANECI_ANOMALY_ISOLATION_FOREST_H_
#define ANECI_ANOMALY_ISOLATION_FOREST_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace aneci {

class IsolationForest {
 public:
  struct Options {
    int num_trees = 100;
    int subsample = 256;
  };

  explicit IsolationForest(const Options& options) : options_(options) {}
  IsolationForest() : options_() {}

  /// Builds the forest on the rows of `points`.
  void Fit(const Matrix& points, Rng& rng);

  /// Scores in (0, 1]; higher = more anomalous (s = 2^{-E[h]/c(n)}).
  std::vector<double> Score(const Matrix& points) const;

 private:
  struct Node {
    int feature = -1;     ///< -1 marks a leaf.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int size = 0;  ///< Leaf: number of training points that reached it.
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int BuildNode(Tree* tree, std::vector<int>& idx, int lo, int hi, int depth,
                int max_depth, const Matrix& points, Rng& rng);
  double PathLength(const Tree& tree, const double* point) const;

  Options options_;
  std::vector<Tree> trees_;
  double normalizer_ = 1.0;
};

}  // namespace aneci

#endif  // ANECI_ANOMALY_ISOLATION_FOREST_H_

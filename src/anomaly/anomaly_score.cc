#include "anomaly/anomaly_score.h"

#include <cmath>

namespace aneci {

std::vector<double> MembershipEntropyScores(const Matrix& p) {
  std::vector<double> scores(p.rows(), 0.0);
  for (int i = 0; i < p.rows(); ++i) {
    const double* row = p.RowPtr(i);
    double h = 0.0;
    for (int c = 0; c < p.cols(); ++c) {
      if (row[c] > 1e-12) h -= row[c] * std::log(row[c]);
    }
    scores[i] = h;
  }
  return scores;
}

std::vector<double> EmbeddingEntropyScores(const Matrix& z) {
  return MembershipEntropyScores(RowSoftmax(z));
}

}  // namespace aneci

#include "anomaly/isolation_forest.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace aneci {
namespace {

// Average path length of an unsuccessful BST search with n points — the
// iForest normaliser c(n).
double AveragePathLength(int n) {
  if (n <= 1) return 0.0;
  const double h = std::log(n - 1.0) + 0.5772156649;  // Harmonic approx.
  return 2.0 * h - 2.0 * (n - 1.0) / n;
}

}  // namespace

int IsolationForest::BuildNode(Tree* tree, std::vector<int>& idx, int lo,
                               int hi, int depth, int max_depth,
                               const Matrix& points, Rng& rng) {
  const int node_id = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  const int count = hi - lo;
  if (count <= 1 || depth >= max_depth) {
    tree->nodes[node_id].size = count;
    return node_id;
  }

  // Pick a random feature with spread; give up after a few tries.
  int feature = -1;
  double fmin = 0.0, fmax = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int f = static_cast<int>(rng.NextInt(points.cols()));
    fmin = fmax = points(idx[lo], f);
    for (int i = lo + 1; i < hi; ++i) {
      fmin = std::min(fmin, points(idx[i], f));
      fmax = std::max(fmax, points(idx[i], f));
    }
    if (fmax > fmin) {
      feature = f;
      break;
    }
  }
  if (feature < 0) {
    tree->nodes[node_id].size = count;
    return node_id;
  }

  const double threshold = rng.Uniform(fmin, fmax);
  auto mid_it = std::partition(idx.begin() + lo, idx.begin() + hi, [&](int i) {
    return points(i, feature) < threshold;
  });
  int mid = static_cast<int>(mid_it - idx.begin());
  if (mid == lo || mid == hi) mid = (lo + hi) / 2;  // Degenerate split.

  tree->nodes[node_id].feature = feature;
  tree->nodes[node_id].threshold = threshold;
  const int left =
      BuildNode(tree, idx, lo, mid, depth + 1, max_depth, points, rng);
  const int right =
      BuildNode(tree, idx, mid, hi, depth + 1, max_depth, points, rng);
  tree->nodes[node_id].left = left;
  tree->nodes[node_id].right = right;
  return node_id;
}

void IsolationForest::Fit(const Matrix& points, Rng& rng) {
  ANECI_CHECK_GT(points.rows(), 0);
  const int n = points.rows();
  const int sample = std::min(options_.subsample, n);
  const int max_depth =
      static_cast<int>(std::ceil(std::log2(std::max(2, sample))));
  normalizer_ = AveragePathLength(sample);

  trees_.clear();
  trees_.reserve(options_.num_trees);
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  for (int t = 0; t < options_.num_trees; ++t) {
    // Random subsample (partial Fisher-Yates prefix).
    for (int i = 0; i < sample; ++i) {
      const int j = i + static_cast<int>(rng.NextInt(n - i));
      std::swap(idx[i], idx[j]);
    }
    std::vector<int> sub(idx.begin(), idx.begin() + sample);
    Tree tree;
    BuildNode(&tree, sub, 0, sample, 0, max_depth, points, rng);
    trees_.push_back(std::move(tree));
  }
}

double IsolationForest::PathLength(const Tree& tree,
                                   const double* point) const {
  int node = 0;
  double depth = 0.0;
  while (tree.nodes[node].feature >= 0) {
    const Node& nd = tree.nodes[node];
    node = point[nd.feature] < nd.threshold ? nd.left : nd.right;
    depth += 1.0;
  }
  // Leaves holding several points contribute the expected extra depth.
  return depth + AveragePathLength(tree.nodes[node].size);
}

std::vector<double> IsolationForest::Score(const Matrix& points) const {
  ANECI_CHECK(!trees_.empty());
  std::vector<double> scores(points.rows(), 0.0);
  for (int i = 0; i < points.rows(); ++i) {
    double mean_path = 0.0;
    for (const Tree& tree : trees_) mean_path += PathLength(tree, points.RowPtr(i));
    mean_path /= trees_.size();
    scores[i] =
        std::pow(2.0, -mean_path / std::max(normalizer_, 1e-9));
  }
  return scores;
}

}  // namespace aneci

#include "embed/sdne.h"

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "core/losses.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

Matrix Sdne::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  if (eo.epochs > 0) opt.epochs = eo.epochs;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);

  const SparseMatrix a_norm = graph.Adjacency(true).RowNormalizedL1();

  // Two-layer encoder over neighbourhood vectors.
  auto w1 =
      ag::MakeParameter(Matrix::GlorotUniform(n, opt.hidden_dim, rng));
  auto w2 = ag::MakeParameter(
      Matrix::GlorotUniform(opt.hidden_dim, opt.dim, rng));

  ag::Adam::Options adam;
  adam.lr = opt.lr;
  ag::Adam optimizer({w1, w2}, adam);

  // Second-order loss via inner-product reconstruction with beta-weighted
  // positives: each observed link appears beta times as strongly as a
  // sampled non-link (SDNE's B-matrix weighting, in pair-sampled form).
  std::vector<ag::PairTarget> pairs =
      SampleReconstructionPairs(a_norm, opt.negatives_per_node, rng,
                                /*binarize=*/true);
  std::vector<ag::PairTarget> weighted;
  weighted.reserve(pairs.size());
  for (const ag::PairTarget& pt : pairs) weighted.push_back(pt);

  // First-order pairs: the graph's edges.
  std::vector<int> edge_u, edge_v;
  edge_u.reserve(graph.num_edges());
  edge_v.reserve(graph.num_edges());
  for (const Edge& e : graph.edges()) {
    edge_u.push_back(e.u);
    edge_v.push_back(e.v);
  }

  Matrix final_h;
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    optimizer.ZeroGrad();
    VarPtr h = ag::MatMul(ag::LeakyRelu(ag::SpMM(&a_norm, w1), 0.01), w2);

    // L2nd: positives repeated with weight beta via Scale on a separate
    // positive-only loss (equivalent to the B weighting).
    std::vector<ag::PairTarget> positives, negatives;
    for (const ag::PairTarget& pt : weighted) {
      (pt.target > 0.0 ? positives : negatives).push_back(pt);
    }
    VarPtr l2nd =
        ag::Add(ag::Scale(ag::InnerProductPairBce(h, positives), opt.beta),
                ag::InnerProductPairBce(h, negatives));

    // L1st: sum over edges of ||h_u - h_v||^2.
    VarPtr l1st;
    if (!edge_u.empty()) {
      VarPtr diff =
          ag::Sub(ag::SelectRows(h, edge_u), ag::SelectRows(h, edge_v));
      l1st = ag::Scale(ag::SumSquares(diff), opt.alpha);
    }

    VarPtr loss = l1st ? ag::Add(l2nd, l1st) : l2nd;
    ag::Backward(loss);
    optimizer.Step();
    if (eo.observer != nullptr) eo.observer->OnEpoch(epoch, loss->value()(0, 0));
    if (epoch == opt.epochs - 1) final_h = h->value();
  }
  return final_h;
}

}  // namespace aneci

// Adapts the AnECI core model (and its ablation variants) to the common
// Embedder / AnomalyScorer interfaces used by the evaluation harness.
#ifndef ANECI_EMBED_ANECI_EMBEDDER_H_
#define ANECI_EMBED_ANECI_EMBEDDER_H_

#include "core/aneci.h"
#include "embed/embedder.h"

namespace aneci {

/// Ablation variants of Table IV.
enum class AneciVariant {
  kRawFeature,  ///< Attributes used directly as the embedding.
  kEncoder,     ///< Untrained GCN propagation (pure Laplacian smoothing).
  kModularity,  ///< Trained with the modularity loss only (beta2 = 0).
  kFull,        ///< Complete AnECI (Eq. 18).
};

const char* AneciVariantName(AneciVariant variant);

class AneciEmbedder final : public Embedder, public AnomalyScorer {
 public:
  explicit AneciEmbedder(const AneciConfig& config,
                         AneciVariant variant = AneciVariant::kFull)
      : config_(config), variant_(variant) {}

  std::string name() const override;

  const Matrix& last_membership() const { return last_p_; }

 private:
  /// Returns Z for downstream tasks. Membership P = softmax(Z) is available
  /// via last_membership() after a call. An EmbedOptions observer receives
  /// the core trainer's per-epoch loss through the EpochCallback hook.
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  /// Membership-entropy anomaly scores (Section VI-C).
  std::vector<double> ScoreAnomaliesImpl(
      const Graph& graph, const EmbedOptions& options) override;

  AneciConfig EffectiveConfig(const EmbedOptions& options) const;

  AneciConfig config_;
  AneciVariant variant_;
  Matrix last_p_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_ANECI_EMBEDDER_H_

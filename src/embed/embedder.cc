#include "embed/embedder.h"

#include "embed/age.h"
#include "embed/anomaly_dae.h"
#include "embed/dane.h"
#include "embed/deepwalk.h"
#include "embed/dgi.h"
#include "embed/dominant.h"
#include "embed/done.h"
#include "embed/gae.h"
#include "embed/gat.h"
#include "embed/graphsage.h"
#include "embed/hope.h"
#include "embed/line.h"
#include "embed/one.h"
#include "embed/sdne.h"
#include "embed/spectral.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace aneci {

namespace {

/// Forwards to the caller's observer while keeping the registry's
/// epoch/loss accounting in one place for every method.
class EpochAccountingObserver final : public TrainObserver {
 public:
  EpochAccountingObserver(TrainObserver* next, Counter* epochs,
                          Gauge* last_loss)
      : next_(next), epochs_(epochs), last_loss_(last_loss) {}

  void OnEpoch(int epoch, double loss) override {
    epochs_->Increment();
    last_loss_->Set(loss);
    if (next_ != nullptr) next_->OnEpoch(epoch, loss);
  }

 private:
  TrainObserver* next_;
  Counter* epochs_;
  Gauge* last_loss_;
};

}  // namespace

Matrix Embedder::Embed(const Graph& graph, const EmbedOptions& options) {
  ANECI_CHECK_MSG(options.rng != nullptr, "EmbedOptions::rng must be set");
  static Counter* calls = MetricsRegistry::Global().GetCounter("embed/calls");
  static Counter* epochs = MetricsRegistry::Global().GetCounter("embed/epochs");
  static Gauge* last_loss =
      MetricsRegistry::Global().GetGauge("embed/last_loss");
  calls->Increment();
  EpochAccountingObserver accounting(options.observer, epochs, last_loss);
  EmbedOptions inner = options;
  inner.observer = &accounting;
  TraceSpan span("embed/" + name());
  return EmbedImpl(graph, inner);
}

std::vector<double> AnomalyScorer::ScoreAnomalies(const Graph& graph,
                                                  const EmbedOptions& options) {
  ANECI_CHECK_MSG(options.rng != nullptr, "EmbedOptions::rng must be set");
  static Counter* calls =
      MetricsRegistry::Global().GetCounter("anomaly/score_calls");
  calls->Increment();
  TraceSpan span("anomaly_score");
  return ScoreAnomaliesImpl(graph, options);
}

StatusOr<std::unique_ptr<Embedder>> CreateEmbedder(const std::string& name) {
  if (name == "DeepWalk" || name == "Node2Vec") {
    RandomWalkOptions walks;
    SkipGramOptions sg;
    if (name == "Node2Vec") {
      walks.p = 0.5;
      walks.q = 2.0;
      return std::unique_ptr<Embedder>(new Node2Vec(walks, sg));
    }
    return std::unique_ptr<Embedder>(new DeepWalk(walks, sg));
  }
  if (name == "LINE") return std::unique_ptr<Embedder>(new Line({}));
  if (name == "GAE" || name == "VGAE") {
    Gae::Options opt;
    opt.variational = (name == "VGAE");
    return std::unique_ptr<Embedder>(new Gae(opt));
  }
  if (name == "DGI") return std::unique_ptr<Embedder>(new Dgi({}));
  if (name == "DANE") return std::unique_ptr<Embedder>(new Dane({}));
  if (name == "DONE" || name == "ADONE") {
    Done::Options opt;
    opt.adversarial = (name == "ADONE");
    return std::unique_ptr<Embedder>(new Done(opt));
  }
  if (name == "AGE") return std::unique_ptr<Embedder>(new Age({}));
  if (name == "GATE") return std::unique_ptr<Embedder>(new Gate({}));
  if (name == "SDNE") return std::unique_ptr<Embedder>(new Sdne({}));
  if (name == "GraphSage") return std::unique_ptr<Embedder>(new GraphSage({}));
  if (name == "HOPE") return std::unique_ptr<Embedder>(new Hope({}));
  if (name == "ONE") return std::unique_ptr<Embedder>(new One({}));
  if (name == "LapEigen")
    return std::unique_ptr<Embedder>(new LaplacianEigenmaps({}));
  if (name == "Dominant") return std::unique_ptr<Embedder>(new Dominant({}));
  if (name == "AnomalyDAE")
    return std::unique_ptr<Embedder>(new AnomalyDae({}));
  return Status::NotFound("unknown embedder: " + name);
}

const std::vector<std::string>& EmbedderNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "DeepWalk", "Node2Vec", "LINE",      "SDNE",      "HOPE",
      "LapEigen", "GAE",     "VGAE",      "GATE",      "DGI",
      "GraphSage", "DANE",   "DONE",      "ADONE",     "AGE",
      "ONE",      "Dominant", "AnomalyDAE"};
  return *names;
}

}  // namespace aneci

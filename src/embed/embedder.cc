#include "embed/embedder.h"
#include <algorithm>

#include "embed/age.h"
#include "embed/anomaly_dae.h"
#include "embed/dane.h"
#include "embed/deepwalk.h"
#include "embed/dgi.h"
#include "embed/dominant.h"
#include "embed/done.h"
#include "embed/gae.h"
#include "embed/gat.h"
#include "embed/graphsage.h"
#include "embed/hope.h"
#include "embed/line.h"
#include "embed/one.h"
#include "embed/sdne.h"
#include "embed/spectral.h"

namespace aneci {

StatusOr<std::unique_ptr<Embedder>> CreateEmbedder(const std::string& name,
                                                   int dim, int epochs) {
  if (dim <= 1) return Status::InvalidArgument("dim must be > 1");
  if (name == "DeepWalk" || name == "Node2Vec") {
    RandomWalkOptions walks;
    SkipGramOptions sg;
    sg.dim = dim;
    // `epochs` parameterises gradient-trained methods; one corpus pass of
    // skip-gram already visits every node walks_per_node times, so cap the
    // pass count instead of scaling it linearly.
    if (epochs > 0) sg.epochs = std::clamp(epochs / 40, 1, 3);
    if (name == "Node2Vec") {
      walks.p = 0.5;
      walks.q = 2.0;
      return std::unique_ptr<Embedder>(new Node2Vec(walks, sg));
    }
    return std::unique_ptr<Embedder>(new DeepWalk(walks, sg));
  }
  if (name == "LINE") {
    Line::Options opt;
    opt.dim = dim;
    return std::unique_ptr<Embedder>(new Line(opt));
  }
  if (name == "GAE" || name == "VGAE") {
    Gae::Options opt;
    opt.dim = dim;
    opt.variational = (name == "VGAE");
    if (epochs > 0) opt.epochs = epochs;
    return std::unique_ptr<Embedder>(new Gae(opt));
  }
  if (name == "DGI") {
    Dgi::Options opt;
    opt.dim = dim;
    if (epochs > 0) opt.epochs = epochs;
    return std::unique_ptr<Embedder>(new Dgi(opt));
  }
  if (name == "DANE") {
    Dane::Options opt;
    opt.dim = dim;
    if (epochs > 0) opt.epochs = epochs;
    return std::unique_ptr<Embedder>(new Dane(opt));
  }
  if (name == "DONE" || name == "ADONE") {
    Done::Options opt;
    opt.dim = dim;
    opt.adversarial = (name == "ADONE");
    if (epochs > 0) opt.epochs = epochs;
    return std::unique_ptr<Embedder>(new Done(opt));
  }
  if (name == "AGE") {
    Age::Options opt;
    opt.dim = dim;
    if (epochs > 0) opt.epochs = epochs;
    return std::unique_ptr<Embedder>(new Age(opt));
  }
  if (name == "GATE") {
    Gate::Options opt;
    opt.dim = dim;
    if (epochs > 0) opt.epochs = epochs;
    return std::unique_ptr<Embedder>(new Gate(opt));
  }
  if (name == "SDNE") {
    Sdne::Options opt;
    opt.dim = dim;
    if (epochs > 0) opt.epochs = epochs;
    return std::unique_ptr<Embedder>(new Sdne(opt));
  }
  if (name == "GraphSage") {
    GraphSage::Options opt;
    opt.dim = dim;
    if (epochs > 0) opt.epochs = epochs;
    return std::unique_ptr<Embedder>(new GraphSage(opt));
  }
  if (name == "HOPE") {
    Hope::Options opt;
    opt.dim = dim;
    return std::unique_ptr<Embedder>(new Hope(opt));
  }
  if (name == "ONE") {
    One::Options opt;
    opt.dim = dim;
    if (epochs > 0) opt.rounds = std::clamp(epochs / 8, 4, 30);
    return std::unique_ptr<Embedder>(new One(opt));
  }
  if (name == "LapEigen") {
    LaplacianEigenmaps::Options opt;
    opt.dim = dim;
    return std::unique_ptr<Embedder>(new LaplacianEigenmaps(opt));
  }
  if (name == "Dominant") {
    Dominant::Options opt;
    opt.dim = dim;
    if (epochs > 0) opt.epochs = epochs;
    return std::unique_ptr<Embedder>(new Dominant(opt));
  }
  if (name == "AnomalyDAE") {
    AnomalyDae::Options opt;
    opt.dim = dim;
    if (epochs > 0) opt.epochs = epochs;
    return std::unique_ptr<Embedder>(new AnomalyDae(opt));
  }
  return Status::NotFound("unknown embedder: " + name);
}

const std::vector<std::string>& EmbedderNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "DeepWalk", "Node2Vec", "LINE",      "SDNE",      "HOPE",
      "LapEigen", "GAE",     "VGAE",      "GATE",      "DGI",
      "GraphSage", "DANE",   "DONE",      "ADONE",     "AGE",
      "ONE",      "Dominant", "AnomalyDAE"};
  return *names;
}

}  // namespace aneci

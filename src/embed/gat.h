// Graph attention networks (Velickovic et al., ICLR'18):
//  - GatClassifier: the semi-supervised two-layer GAT that Table III lists
//    among the semi-supervised baselines;
//  - Gate: a GATE-style graph attention autoencoder ([22] in the paper:
//    GAE with attention aggregation), trained unsupervised with the
//    inner-product decoder.
#ifndef ANECI_EMBED_GAT_H_
#define ANECI_EMBED_GAT_H_

#include "data/datasets.h"
#include "embed/embedder.h"

namespace aneci {

class GatClassifier {
 public:
  struct Options {
    int hidden_dim = 32;
    int epochs = 150;
    double lr = 0.01;
    double weight_decay = 5e-4;
    double attention_slope = 0.2;
  };

  explicit GatClassifier(const Options& options) : options_(options) {}
  GatClassifier() : options_() {}

  void Fit(const Dataset& dataset, Rng& rng);
  const std::vector<int>& predictions() const { return predictions_; }
  double Accuracy(const Dataset& dataset,
                  const std::vector<int>& eval_idx) const;

 private:
  Options options_;
  std::vector<int> predictions_;
};

class Gate final : public Embedder {
 public:
  struct Options {
    int hidden_dim = 64;
    int dim = 32;
    int epochs = 100;
    double lr = 0.01;
    double attention_slope = 0.2;
    int negatives_per_edge = 1;
  };

  explicit Gate(const Options& options) : options_(options) {}

  std::string name() const override { return "GATE"; }

 private:
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_GAT_H_

// AGE (Cui et al., KDD'20): Adaptive Graph Encoder. A non-parametric
// Laplacian-smoothing filter strips high-frequency noise from the attributes;
// a linear encoder is then trained with adaptively re-labelled similar /
// dissimilar node pairs selected from the current embedding similarities.
#ifndef ANECI_EMBED_AGE_H_
#define ANECI_EMBED_AGE_H_

#include "embed/embedder.h"

namespace aneci {

class Age final : public Embedder {
 public:
  struct Options {
    int dim = 32;
    int filter_hops = 3;   ///< Applications of (I - 0.5 L).
    int epochs = 120;
    double lr = 0.01;
    int adaptive_every = 20;
    /// Candidate random pairs examined per node when refreshing labels.
    int candidates_per_node = 4;
    /// Fraction of most-similar candidates labelled positive / least-similar
    /// labelled negative at each refresh.
    double select_fraction = 0.25;
  };

  explicit Age(const Options& options) : options_(options) {}

  std::string name() const override { return "AGE"; }

 private:
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_AGE_H_

#include "embed/line.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace aneci {
namespace {

class DegreeSampler {
 public:
  explicit DegreeSampler(const Graph& graph) {
    cum_.resize(graph.num_nodes());
    double acc = 0.0;
    for (int i = 0; i < graph.num_nodes(); ++i) {
      acc += std::pow(graph.Degree(i) + 1.0, 0.75);
      cum_[i] = acc;
    }
  }
  int Sample(Rng& rng) const {
    const double t = rng.NextDouble() * cum_.back();
    const auto it = std::lower_bound(cum_.begin(), cum_.end(), t);
    return static_cast<int>(std::min<size_t>(it - cum_.begin(),
                                             cum_.size() - 1));
  }

 private:
  std::vector<double> cum_;
};

inline void PairUpdate(double* u, double* v, int dim, double label, double lr,
                       bool update_u) {
  double dot = 0.0;
  for (int i = 0; i < dim; ++i) dot += u[i] * v[i];
  const double s = 1.0 / (1.0 + std::exp(-dot));
  const double g = lr * (label - s);
  for (int i = 0; i < dim; ++i) {
    const double uu = u[i];
    if (update_u) u[i] += g * v[i];
    v[i] += g * uu;
  }
}

}  // namespace

Matrix Line::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  const int m = graph.num_edges();
  ANECI_CHECK_GT(n, 0);
  const int half = std::max(2, opt.dim / 2);
  const int64_t samples =
      opt.samples > 0 ? opt.samples
                           : 200LL * std::max(m, n);

  Matrix first = Matrix::RandomUniform(n, half, 0.5 / half, rng);
  Matrix second = Matrix::RandomUniform(n, half, 0.5 / half, rng);
  Matrix context(n, half);  // Second-order context table.
  DegreeSampler sampler(graph);

  if (m > 0) {
    for (int64_t step = 0; step < samples; ++step) {
      const double lr =
          opt.lr *
          std::max(0.05, 1.0 - static_cast<double>(step) / samples);
      const Edge& e = graph.edges()[rng.NextInt(m)];
      // Undirected edge, random orientation.
      int u = e.u, v = e.v;
      if (rng.NextBool(0.5)) std::swap(u, v);

      // First order: symmetric inner-product on `first`.
      PairUpdate(first.RowPtr(u), first.RowPtr(v), half, 1.0, lr, true);
      for (int k = 0; k < opt.negatives; ++k) {
        const int neg = sampler.Sample(rng);
        if (neg == v || neg == u) continue;
        PairUpdate(first.RowPtr(u), first.RowPtr(neg), half, 0.0, lr, true);
      }

      // Second order: vertex table vs context table.
      PairUpdate(second.RowPtr(u), context.RowPtr(v), half, 1.0, lr, true);
      for (int k = 0; k < opt.negatives; ++k) {
        const int neg = sampler.Sample(rng);
        if (neg == v) continue;
        PairUpdate(second.RowPtr(u), context.RowPtr(neg), half, 0.0, lr, true);
      }
    }
  }

  // Concatenate first- and second-order halves.
  Matrix out(n, 2 * half);
  for (int i = 0; i < n; ++i) {
    std::copy(first.RowPtr(i), first.RowPtr(i) + half, out.RowPtr(i));
    std::copy(second.RowPtr(i), second.RowPtr(i) + half,
              out.RowPtr(i) + half);
  }
  return out;
}

}  // namespace aneci

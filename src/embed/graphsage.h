// Unsupervised GraphSAGE (Hamilton et al., NeurIPS'17): mean-aggregation
// over sampled neighbourhoods trained with a random-walk co-occurrence
// objective (nearby nodes embed similarly, negatives pushed apart). This is
// the inductive/sampled counterpart to the GCN encoder and the scalability
// route the paper's conclusion points to.
#ifndef ANECI_EMBED_GRAPHSAGE_H_
#define ANECI_EMBED_GRAPHSAGE_H_

#include "embed/embedder.h"

namespace aneci {

class GraphSage final : public Embedder {
 public:
  struct Options {
    int hidden_dim = 64;
    int dim = 32;
    int epochs = 80;
    double lr = 0.01;
    int fanout = 10;        ///< Neighbours sampled per node per epoch.
    int walk_length = 5;    ///< Positive pairs come from short walks.
    int walks_per_node = 2;
    int negatives_per_node = 3;
  };

  explicit GraphSage(const Options& options) : options_(options) {}

  std::string name() const override { return "GraphSage"; }

 private:
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_GRAPHSAGE_H_

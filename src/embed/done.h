// DONE and ADONE (Bandyopadhyay et al., WSDM'20): dual (structure +
// attribute) autoencoders with per-node outlier weights that down-weight
// anomalous nodes during training, plus a homophily term tying neighbours'
// embeddings. ADONE adds an adversarial discriminator aligning the two
// views. Both expose native per-node anomaly scores.
#ifndef ANECI_EMBED_DONE_H_
#define ANECI_EMBED_DONE_H_

#include "embed/embedder.h"

namespace aneci {

class Done : public Embedder, public AnomalyScorer {
 public:
  struct Options {
    int hidden_dim = 64;
    int dim = 32;  ///< Total; each view gets dim / 2.
    int epochs = 100;
    double lr = 0.01;
    double homophily_weight = 0.5;
    int negatives_per_node = 3;
    /// Refresh outlier weights every this many epochs.
    int reweight_every = 20;
    bool adversarial = false;  ///< true = ADONE.
  };

  explicit Done(const Options& options) : options_(options) {}

  std::string name() const override {
    return options_.adversarial ? "ADONE" : "DONE";
  }

 private:
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;
  std::vector<double> ScoreAnomaliesImpl(
      const Graph& graph, const EmbedOptions& options) override;

  /// Runs training; fills embedding and per-node scores.
  void Run(const Graph& graph, const EmbedOptions& options, Matrix* embedding,
           std::vector<double>* scores) const;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_DONE_H_

// DGI (Velickovic et al., ICLR'19): Deep Graph Infomax. Maximises mutual
// information between patch representations (GCN outputs) and a global
// summary vector, contrasting against a corrupted graph (row-shuffled
// features), via a bilinear discriminator.
#ifndef ANECI_EMBED_DGI_H_
#define ANECI_EMBED_DGI_H_

#include "embed/embedder.h"

namespace aneci {

class Dgi final : public Embedder {
 public:
  struct Options {
    int dim = 64;
    int epochs = 150;
    double lr = 0.01;
  };

  explicit Dgi(const Options& options) : options_(options) {}

  std::string name() const override { return "DGI"; }

 private:
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_DGI_H_

// DANE-style two-view deep autoencoder (Gao & Huang, IJCAI'18): one branch
// encodes high-order structural proximity, the other node attributes;
// training couples structure reconstruction, attribute reconstruction and a
// cross-view consistency term. The embedding concatenates both views.
#ifndef ANECI_EMBED_DANE_H_
#define ANECI_EMBED_DANE_H_

#include "embed/embedder.h"

namespace aneci {

class Dane final : public Embedder {
 public:
  struct Options {
    int hidden_dim = 64;
    int dim = 32;  ///< Total; each view gets dim / 2.
    int epochs = 120;
    double lr = 0.01;
    double consistency_weight = 0.5;
    int negatives_per_node = 3;
  };

  explicit Dane(const Options& options) : options_(options) {}

  std::string name() const override { return "DANE"; }

 private:
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_DANE_H_

#include "embed/gae.h"

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

Matrix Gae::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  if (eo.epochs > 0) opt.epochs = eo.epochs;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);

  const SparseMatrix s_norm = graph.NormalizedAdjacency();
  const Matrix features = graph.FeaturesOrIdentity();
  const SparseMatrix x_sparse = SparseMatrix::FromDense(features);

  auto w1 = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), opt.hidden_dim, rng));
  auto w_mu = ag::MakeParameter(
      Matrix::GlorotUniform(opt.hidden_dim, opt.dim, rng));
  auto w_logstd = ag::MakeParameter(
      Matrix::GlorotUniform(opt.hidden_dim, opt.dim, rng));

  std::vector<VarPtr> params = {w1, w_mu};
  if (opt.variational) params.push_back(w_logstd);
  ag::Adam::Options adam;
  adam.lr = opt.lr;
  ag::Adam optimizer(params, adam);

  // Decoder targets: every edge is a positive; sampled non-edges negatives.
  auto sample_pairs = [&]() {
    std::vector<ag::PairTarget> pairs;
    pairs.reserve(graph.num_edges() *
                  static_cast<size_t>(1 + opt.negatives_per_edge));
    for (const Edge& e : graph.edges()) {
      pairs.push_back({e.u, e.v, 1.0});
      for (int k = 0; k < opt.negatives_per_edge; ++k) {
        const int a = static_cast<int>(rng.NextInt(n));
        const int b = static_cast<int>(rng.NextInt(n));
        if (a == b || graph.HasEdge(a, b)) continue;
        pairs.push_back({a, b, 0.0});
      }
    }
    return pairs;
  };

  Matrix final_z;
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    optimizer.ZeroGrad();
    VarPtr h1 = ag::Relu(ag::SpMM(&s_norm, ag::SpMM(&x_sparse, w1)));
    VarPtr mu = ag::SpMM(&s_norm, ag::MatMul(h1, w_mu));

    VarPtr z = mu;
    VarPtr loss;
    if (opt.variational) {
      VarPtr logstd = ag::SpMM(&s_norm, ag::MatMul(h1, w_logstd));
      // Reparameterise: z = mu + eps (.) exp(logstd).
      Matrix eps = Matrix::RandomNormal(n, opt.dim, 1.0, rng);
      z = ag::Add(mu, ag::Hadamard(ag::MakeConstant(std::move(eps)),
                                   ag::Exp(logstd)));
      // KL(q||N(0,I)) = -0.5 sum(1 + 2 logstd - mu^2 - exp(2 logstd)).
      VarPtr kl = ag::Scale(
          ag::Sub(ag::Add(ag::SumSquares(mu),
                          ag::SumAll(ag::Exp(ag::Scale(logstd, 2.0)))),
                  ag::Add(ag::Scale(ag::SumAll(logstd), 2.0),
                          ag::SumAll(ag::MakeConstant(
                              Matrix(n, opt.dim, 1.0))))),
          0.5 * opt.kl_weight / n);
      loss = ag::Add(ag::InnerProductPairBce(z, sample_pairs()), kl);
    } else {
      loss = ag::InnerProductPairBce(z, sample_pairs());
    }

    ag::Backward(loss);
    optimizer.Step();
    if (eo.observer != nullptr) eo.observer->OnEpoch(epoch, loss->value()(0, 0));
    if (epoch == opt.epochs - 1) final_z = mu->value();
  }
  return final_z;
}

}  // namespace aneci

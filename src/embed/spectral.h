// Laplacian Eigenmaps (Belkin & Niyogi 2003) — the classical spectral
// embedding the paper's related work traces modern methods back to — and
// spectral clustering on top of it. Embeds nodes with the eigenvectors of
// the symmetric normalised Laplacian L = I - D^{-1/2} A D^{-1/2}
// corresponding to the smallest non-trivial eigenvalues.
#ifndef ANECI_EMBED_SPECTRAL_H_
#define ANECI_EMBED_SPECTRAL_H_

#include "embed/embedder.h"

namespace aneci {

class LaplacianEigenmaps final : public Embedder {
 public:
  struct Options {
    int dim = 16;
    /// Krylov steps for the Lanczos solver; 0 = automatic.
    int lanczos_steps = 0;
  };

  explicit LaplacianEigenmaps(const Options& options) : options_(options) {}

  std::string name() const override { return "LapEigen"; }

 private:
  /// Closed-form spectral solve: EmbedOptions::epochs is ignored and the
  /// TrainObserver is never called.
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  Options options_;
};

/// Spectral clustering: Laplacian Eigenmaps into k dimensions, rows L2
/// normalised, then k-means++. Returns the cluster assignment.
std::vector<int> SpectralClustering(const Graph& graph, int k, Rng& rng);

}  // namespace aneci

#endif  // ANECI_EMBED_SPECTRAL_H_

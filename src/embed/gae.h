// GAE and VGAE (Kipf & Welling 2016): GCN encoder + inner-product decoder
// reconstructing the (first-order) adjacency with cross-entropy; VGAE adds a
// Gaussian latent with a KL term and the reparameterisation trick.
#ifndef ANECI_EMBED_GAE_H_
#define ANECI_EMBED_GAE_H_

#include "embed/embedder.h"

namespace aneci {

class Gae final : public Embedder {
 public:
  struct Options {
    int hidden_dim = 64;
    int dim = 32;
    int epochs = 150;
    double lr = 0.01;
    bool variational = false;  ///< true = VGAE.
    double kl_weight = 1.0;
    /// Negative pairs sampled per positive edge for the decoder loss.
    int negatives_per_edge = 1;
  };

  explicit Gae(const Options& options) : options_(options) {}

  std::string name() const override {
    return options_.variational ? "VGAE" : "GAE";
  }

 private:
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_GAE_H_

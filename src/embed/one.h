// ONE (Bandyopadhyay et al., AAAI'19): Outlier-aware Network Embedding for
// attributed networks via joint matrix factorisation — the method whose
// outlier-seeding protocol the paper adopts (Section V-C). Structure
// (adjacency) and attributes are factorised with shared node factors; each
// node carries an outlier weight o_i that down-weights its residuals, and
// the weights themselves are re-estimated from the residuals each round.
// Exposes native anomaly scores (the final o_i).
#ifndef ANECI_EMBED_ONE_H_
#define ANECI_EMBED_ONE_H_

#include "embed/embedder.h"

namespace aneci {

class One final : public Embedder {
 public:
  struct Options {
    int dim = 16;
    int rounds = 20;       ///< Alternating minimisation rounds.
    int inner_steps = 3;   ///< Gradient steps per factor per round.
    double lr = 0.05;
    double attr_weight = 1.0;
  };

  explicit One(const Options& options) : options_(options) {}

  std::string name() const override { return "ONE"; }

 private:
  /// EmbedOptions::epochs maps onto alternating-minimisation rounds
  /// (epochs / 8, clamped to [4, 30]); the observer sees one OnEpoch per
  /// round with the mean squared residual as the loss.
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_ONE_H_

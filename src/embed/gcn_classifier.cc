#include "embed/gcn_classifier.h"

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

void GcnClassifier::Fit(const Dataset& dataset, Rng& rng) {
  const Graph& graph = dataset.graph;
  const int n = graph.num_nodes();
  const int k = graph.num_classes();
  ANECI_CHECK_GT(k, 1);

  const SparseMatrix s_norm = graph.NormalizedAdjacency();
  const Matrix features = graph.FeaturesOrIdentity();
  const SparseMatrix x_sparse = SparseMatrix::FromDense(features);

  std::vector<int> train_labels;
  for (int i : dataset.train_idx) train_labels.push_back(graph.labels()[i]);

  auto w1 = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), options_.hidden_dim, rng));
  auto w2 =
      ag::MakeParameter(Matrix::GlorotUniform(options_.hidden_dim, k, rng));
  // RGCN variance stream.
  auto w1v = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), options_.hidden_dim, rng));

  std::vector<VarPtr> params = {w1, w2};
  if (options_.robust) params.push_back(w1v);
  ag::Adam::Options adam;
  adam.lr = options_.lr;
  adam.weight_decay = options_.weight_decay;
  ag::Adam optimizer(params, adam);

  Matrix final_logits;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    optimizer.ZeroGrad();
    VarPtr logits;
    VarPtr reg;
    if (!options_.robust) {
      VarPtr h1 = ag::Relu(ag::SpMM(&s_norm, ag::SpMM(&x_sparse, w1)));
      logits = ag::SpMM(&s_norm, ag::MatMul(h1, w2));
    } else {
      // Gaussian hidden layer: mean mu and variance sigma^2 (softplus-free:
      // sigma = exp of a pre-activation kept small by weight decay).
      VarPtr mu = ag::Relu(ag::SpMM(&s_norm, ag::SpMM(&x_sparse, w1)));
      VarPtr log_sigma = ag::SpMM(&s_norm, ag::SpMM(&x_sparse, w1v));
      VarPtr sigma = ag::Exp(ag::Scale(log_sigma, 0.5));
      // Variance-based attention: alpha = exp(-sigma^2) gates the mean, so
      // high-variance (attacked) dimensions contribute less.
      VarPtr attention =
          ag::Exp(ag::Scale(ag::Hadamard(sigma, sigma), -1.0));
      VarPtr gated = ag::Hadamard(mu, attention);
      // Sample h = gated + eps (.) sigma during training.
      Matrix eps = Matrix::RandomNormal(n, options_.hidden_dim, 1.0, rng);
      VarPtr h1 =
          ag::Add(gated, ag::Hadamard(ag::MakeConstant(std::move(eps)), sigma));
      logits = ag::SpMM(&s_norm, ag::MatMul(h1, w2));
      // KL-style penalty keeping the Gaussians near N(0, I).
      reg = ag::Scale(
          ag::Add(ag::SumSquares(mu), ag::SumSquares(sigma)),
          5e-4 / n);
    }
    VarPtr loss =
        ag::SoftmaxCrossEntropy(logits, dataset.train_idx, train_labels);
    if (reg) loss = ag::Add(loss, reg);
    ag::Backward(loss);
    optimizer.Step();
    if (epoch == options_.epochs - 1) final_logits = logits->value();
  }

  predictions_.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    const double* row = final_logits.RowPtr(i);
    int best = 0;
    for (int c = 1; c < k; ++c)
      if (row[c] > row[best]) best = c;
    predictions_[i] = best;
  }
}

double GcnClassifier::Accuracy(const Dataset& dataset,
                               const std::vector<int>& eval_idx) const {
  ANECI_CHECK(!predictions_.empty());
  ANECI_CHECK(!eval_idx.empty());
  int correct = 0;
  for (int i : eval_idx)
    if (predictions_[i] == dataset.graph.labels()[i]) ++correct;
  return static_cast<double>(correct) / eval_idx.size();
}

}  // namespace aneci

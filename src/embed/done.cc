#include "embed/done.h"

#include <cmath>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "core/losses.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

namespace {

// Per-node squared reconstruction error of an attribute decoder output.
std::vector<double> RowSquaredErrors(const Matrix& predicted,
                                     const Matrix& target) {
  std::vector<double> err(predicted.rows(), 0.0);
  for (int i = 0; i < predicted.rows(); ++i) {
    const double* p = predicted.RowPtr(i);
    const double* t = target.RowPtr(i);
    for (int c = 0; c < predicted.cols(); ++c) {
      const double d = p[c] - t[c];
      err[i] += d * d;
    }
  }
  return err;
}

// Per-node mean squared residual of the pair decoder.
std::vector<double> PairErrors(const Matrix& z,
                               const std::vector<ag::PairTarget>& pairs) {
  std::vector<double> err(z.rows(), 0.0);
  std::vector<int> count(z.rows(), 0);
  for (const ag::PairTarget& pt : pairs) {
    double d = 0.0;
    const double* a = z.RowPtr(pt.u);
    const double* b = z.RowPtr(pt.v);
    for (int c = 0; c < z.cols(); ++c) d += a[c] * b[c];
    const double s = 1.0 / (1.0 + std::exp(-d));
    const double r = (s - pt.target) * (s - pt.target);
    err[pt.u] += r;
    err[pt.v] += r;
    ++count[pt.u];
    ++count[pt.v];
  }
  for (size_t i = 0; i < err.size(); ++i)
    if (count[i] > 0) err[i] /= count[i];
  return err;
}

// Normalises errors to outlier weights: w_i = log(1 / o_i) where o_i is the
// error share (DONE's formulation); rescaled to mean 1.
std::vector<double> ErrorsToWeights(const std::vector<double>& errors) {
  double total = 0.0;
  for (double e : errors) total += e;
  const int n = static_cast<int>(errors.size());
  std::vector<double> w(n, 1.0);
  if (total <= 0.0) return w;
  double mean_w = 0.0;
  for (int i = 0; i < n; ++i) {
    const double o = std::max(errors[i] / total, 1e-9);
    w[i] = std::log(1.0 / o);
    mean_w += w[i];
  }
  mean_w /= n;
  for (double& v : w) v = std::max(v / mean_w, 0.0);
  return w;
}

}  // namespace

void Done::Run(const Graph& graph, const EmbedOptions& eo, Matrix* embedding,
               std::vector<double>* scores) const {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  if (eo.epochs > 0) opt.epochs = eo.epochs;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);
  const int half = std::max(2, opt.dim / 2);

  const SparseMatrix a_norm = graph.Adjacency(true).RowNormalizedL1();
  const Matrix features = graph.FeaturesOrIdentity();
  const SparseMatrix x_sparse = SparseMatrix::FromDense(features);

  auto ws1 =
      ag::MakeParameter(Matrix::GlorotUniform(n, opt.hidden_dim, rng));
  auto ws2 =
      ag::MakeParameter(Matrix::GlorotUniform(opt.hidden_dim, half, rng));
  auto wa1 = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), opt.hidden_dim, rng));
  auto wa2 =
      ag::MakeParameter(Matrix::GlorotUniform(opt.hidden_dim, half, rng));
  auto wdec =
      ag::MakeParameter(Matrix::GlorotUniform(half, features.cols(), rng));
  // ADONE discriminator: logistic direction separating the two views.
  auto wdisc = ag::MakeParameter(Matrix::GlorotUniform(half, 1, rng));

  std::vector<VarPtr> enc_params = {ws1, ws2, wa1, wa2, wdec};
  ag::Adam::Options adam;
  adam.lr = opt.lr;
  ag::Adam optimizer(enc_params, adam);
  ag::Adam disc_optimizer({wdisc}, adam);

  std::vector<ag::PairTarget> pairs =
      SampleReconstructionPairs(a_norm, opt.negatives_per_node, rng,
                                /*binarize=*/true);
  std::vector<double> weights(n, 1.0);

  Matrix zs_final, za_final, xhat_final;
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    optimizer.ZeroGrad();

    VarPtr zs = ag::MatMul(ag::LeakyRelu(ag::SpMM(&a_norm, ws1), 0.01), ws2);
    VarPtr za = ag::MatMul(ag::LeakyRelu(ag::SpMM(&x_sparse, wa1), 0.01), wa2);

    // Structure reconstruction (outlier-weighted through the pair targets is
    // approximated by node weights on the homophily + attribute terms).
    VarPtr l_struct = ag::InnerProductPairBce(zs, pairs);
    const double per_node = static_cast<double>(pairs.size()) / n;

    // Attribute reconstruction, weighted per node by the outlier weights.
    VarPtr xhat = ag::MatMul(za, wdec);
    Matrix weight_rows(n, features.cols());
    for (int i = 0; i < n; ++i) {
      double* row = weight_rows.RowPtr(i);
      for (int c = 0; c < features.cols(); ++c) row[c] = weights[i];
    }
    VarPtr weighted_residual = ag::Hadamard(
        ag::Sub(xhat, ag::MakeConstant(features)),
        ag::MakeConstant(std::move(weight_rows)));
    VarPtr l_attr = ag::Scale(
        ag::SumSquares(weighted_residual),
        per_node * n / static_cast<double>(features.size()));

    // Homophily: neighbours should embed closely in both views.
    std::vector<ag::PairTarget> edge_pairs;
    edge_pairs.reserve(graph.num_edges());
    for (const Edge& e : graph.edges()) edge_pairs.push_back({e.u, e.v, 1.0});
    VarPtr l_hom = ag::Scale(
        ag::Add(ag::InnerProductPairBce(zs, edge_pairs),
                ag::InnerProductPairBce(za, edge_pairs)),
        opt.homophily_weight);

    VarPtr loss = ag::Add(ag::Add(l_struct, l_attr), l_hom);

    if (opt.adversarial) {
      // Generator step: both views should fool the discriminator toward 0.5;
      // implemented as minimising the squared discriminator margin.
      VarPtr margin = ag::Sub(ag::MatMul(zs, wdisc), ag::MatMul(za, wdisc));
      loss = ag::Add(loss, ag::Scale(ag::SumSquares(margin), 0.1 / n));
    }

    ag::Backward(loss);
    optimizer.Step();
    if (eo.observer != nullptr) eo.observer->OnEpoch(epoch, loss->value()(0, 0));

    if (opt.adversarial) {
      // Discriminator step: separate the (detached) views.
      disc_optimizer.ZeroGrad();
      VarPtr zs_c = ag::MakeConstant(zs->value());
      VarPtr za_c = ag::MakeConstant(za->value());
      Matrix ones(n, 1, 1.0), zeros(n, 1, 0.0);
      VarPtr d_loss = ag::Scale(
          ag::Add(ag::BinaryCrossEntropySum(
                      ag::Sigmoid(ag::MatMul(zs_c, wdisc)), ones),
                  ag::BinaryCrossEntropySum(
                      ag::Sigmoid(ag::MatMul(za_c, wdisc)), zeros)),
          1.0 / (2.0 * n));
      ag::Backward(d_loss);
      disc_optimizer.Step();
    }

    // Refresh outlier weights from the current per-node errors.
    if (opt.reweight_every > 0 &&
        (epoch + 1) % opt.reweight_every == 0) {
      std::vector<double> err_a = RowSquaredErrors(xhat->value(), features);
      std::vector<double> err_s = PairErrors(zs->value(), pairs);
      std::vector<double> combined(n);
      for (int i = 0; i < n; ++i) combined[i] = err_a[i] + err_s[i];
      weights = ErrorsToWeights(combined);
    }

    if (epoch == opt.epochs - 1) {
      zs_final = zs->value();
      za_final = za->value();
      xhat_final = xhat->value();
    }
  }

  if (embedding != nullptr) {
    *embedding = Matrix(n, 2 * half);
    for (int i = 0; i < n; ++i) {
      std::copy(zs_final.RowPtr(i), zs_final.RowPtr(i) + half,
                embedding->RowPtr(i));
      std::copy(za_final.RowPtr(i), za_final.RowPtr(i) + half,
                embedding->RowPtr(i) + half);
    }
  }
  if (scores != nullptr) {
    // Anomaly score: normalised sum of structure + attribute recon errors.
    std::vector<double> err_a = RowSquaredErrors(xhat_final, features);
    std::vector<double> err_s = PairErrors(zs_final, pairs);
    const auto norm = [](std::vector<double>& v) {
      double mx = 1e-12;
      for (double x : v) mx = std::max(mx, x);
      for (double& x : v) x /= mx;
    };
    norm(err_a);
    norm(err_s);
    scores->assign(n, 0.0);
    for (int i = 0; i < n; ++i) (*scores)[i] = 0.5 * (err_a[i] + err_s[i]);
  }
}

Matrix Done::EmbedImpl(const Graph& graph, const EmbedOptions& options) {
  Matrix embedding;
  Run(graph, options, &embedding, nullptr);
  return embedding;
}

std::vector<double> Done::ScoreAnomaliesImpl(const Graph& graph,
                                             const EmbedOptions& options) {
  std::vector<double> scores;
  Run(graph, options, nullptr, &scores);
  return scores;
}

}  // namespace aneci

// Common interface for all unsupervised network-embedding methods (AnECI's
// baselines): given an attributed graph, produce an (N x h) embedding.
#ifndef ANECI_EMBED_EMBEDDER_H_
#define ANECI_EMBED_EMBEDDER_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace aneci {

class Embedder {
 public:
  virtual ~Embedder() = default;

  /// Method name as used in the paper's tables ("DeepWalk", "GAE", ...).
  virtual std::string name() const = 0;

  /// Learns node embeddings for `graph`. Deterministic given `rng` state.
  virtual Matrix Embed(const Graph& graph, Rng& rng) = 0;
};

/// Implemented by methods that natively produce per-node anomaly scores
/// (Dominant, DONE, ADONE, AnomalyDAE). Higher score = more anomalous.
/// Other embedders fall back to IsolationForest over their embeddings
/// (see anomaly/anomaly_score.h), matching the paper's protocol.
class AnomalyScorer {
 public:
  virtual ~AnomalyScorer() = default;
  virtual std::vector<double> ScoreAnomalies(const Graph& graph, Rng& rng) = 0;
};

/// Factory over the baseline registry. Known names (case-sensitive):
/// DeepWalk, Node2Vec, LINE, GAE, VGAE, DGI, DANE, DONE, ADONE, AGE,
/// Dominant, AnomalyDAE. `dim` is the embedding width; methods with fixed
/// internal structure round it as needed. `epochs` <= 0 keeps each method's
/// default.
StatusOr<std::unique_ptr<Embedder>> CreateEmbedder(const std::string& name,
                                                   int dim = 32,
                                                   int epochs = 0);

/// Names accepted by CreateEmbedder, in the paper's ordering.
const std::vector<std::string>& EmbedderNames();

}  // namespace aneci

#endif  // ANECI_EMBED_EMBEDDER_H_

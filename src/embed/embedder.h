// Common interface for all unsupervised network-embedding methods (AnECI's
// baselines): given an attributed graph, produce an (N x h) embedding.
//
// Run-time knobs (RNG, embedding width, epoch budget, training observer)
// travel in EmbedOptions rather than constructor arguments, so one
// instrumentation path — the non-virtual Embed() below — covers every
// method: it opens an "embed/<name>" trace span, counts calls and epochs,
// and forwards per-epoch losses to both the metrics registry and the
// caller's TrainObserver before dispatching to the method's EmbedImpl().
#ifndef ANECI_EMBED_EMBEDDER_H_
#define ANECI_EMBED_EMBEDDER_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace aneci {

/// Per-epoch training hook. Methods that train by gradient descent call
/// OnEpoch once per epoch with that epoch's loss; closed-form methods
/// (HOPE, LapEigen) never call it. Observers must tolerate method-specific
/// loss scales — only the trend within one run is comparable.
class TrainObserver {
 public:
  virtual ~TrainObserver() = default;
  virtual void OnEpoch(int epoch, double loss) = 0;
};

/// Run-time options shared by every embedder. `rng` is required; the
/// remaining fields are overrides applied on top of each method's
/// configured defaults:
///   dim     > 1  — embedding width (methods with fixed internal structure
///                  round it as needed); <= 1 keeps the method default.
///   epochs  > 0  — training budget for gradient-trained methods; sampling
///                  methods rescale it (DeepWalk caps corpus passes, ONE
///                  maps it to coordinate rounds); closed-form methods
///                  ignore it; <= 0 keeps each method's default.
///   observer     — optional per-epoch hook (see TrainObserver).
struct EmbedOptions {
  Rng* rng = nullptr;
  int dim = 0;
  int epochs = 0;
  TrainObserver* observer = nullptr;
};

class Embedder {
 public:
  virtual ~Embedder() = default;

  /// Method name as used in the paper's tables ("DeepWalk", "GAE", ...).
  virtual std::string name() const = 0;

  /// Learns node embeddings for `graph`. Deterministic given the state of
  /// `options.rng` (which must be non-null). Non-virtual: this is the
  /// single instrumented entry point; methods implement EmbedImpl().
  Matrix Embed(const Graph& graph, const EmbedOptions& options);

 protected:
  virtual Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) = 0;
};

/// Implemented by methods that natively produce per-node anomaly scores
/// (Dominant, DONE, ADONE, AnomalyDAE). Higher score = more anomalous.
/// Other embedders fall back to IsolationForest over their embeddings
/// (see anomaly/anomaly_score.h), matching the paper's protocol.
class AnomalyScorer {
 public:
  virtual ~AnomalyScorer() = default;

  /// Instrumented entry point, mirroring Embedder::Embed.
  std::vector<double> ScoreAnomalies(const Graph& graph,
                                     const EmbedOptions& options);

 protected:
  virtual std::vector<double> ScoreAnomaliesImpl(
      const Graph& graph, const EmbedOptions& options) = 0;
};

/// Factory over the baseline registry. Known names (case-sensitive):
/// DeepWalk, Node2Vec, LINE, GAE, VGAE, DGI, DANE, DONE, ADONE, AGE,
/// Dominant, AnomalyDAE, ... (see EmbedderNames()). Width and epoch budget
/// are per-call EmbedOptions, not construction state.
StatusOr<std::unique_ptr<Embedder>> CreateEmbedder(const std::string& name);

/// Names accepted by CreateEmbedder, in the paper's ordering.
const std::vector<std::string>& EmbedderNames();

}  // namespace aneci

#endif  // ANECI_EMBED_EMBEDDER_H_

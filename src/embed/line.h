// LINE (Tang et al., WWW'15): large-scale information network embedding
// preserving first- and second-order proximity, trained by edge sampling
// with negative sampling. The final embedding concatenates the two halves,
// as the original paper recommends.
#ifndef ANECI_EMBED_LINE_H_
#define ANECI_EMBED_LINE_H_

#include "embed/embedder.h"

namespace aneci {

class Line final : public Embedder {
 public:
  struct Options {
    int dim = 32;          ///< Total width; split evenly across both orders.
    int64_t samples = 0;   ///< Edge samples per order; 0 = 200 * M.
    int negatives = 5;
    double lr = 0.025;
  };

  explicit Line(const Options& options) : options_(options) {}

  std::string name() const override { return "LINE"; }

 private:
  /// Edge-sampled, not epoch-trained: EmbedOptions::epochs is ignored and
  /// the TrainObserver is never called.
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_LINE_H_

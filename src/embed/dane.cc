#include "embed/dane.h"

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "core/losses.h"
#include "graph/proximity.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

Matrix Dane::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  if (eo.epochs > 0) opt.epochs = eo.epochs;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);
  const int half = std::max(2, opt.dim / 2);

  ProximityOptions prox;
  prox.order = 2;
  const SparseMatrix proximity = HighOrderProximity(graph, prox);
  const Matrix features = graph.FeaturesOrIdentity();
  const SparseMatrix x_sparse = SparseMatrix::FromDense(features);

  // Structure branch: encode rows of the proximity matrix.
  auto ws1 =
      ag::MakeParameter(Matrix::GlorotUniform(n, opt.hidden_dim, rng));
  auto ws2 =
      ag::MakeParameter(Matrix::GlorotUniform(opt.hidden_dim, half, rng));
  // Attribute branch.
  auto wa1 = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), opt.hidden_dim, rng));
  auto wa2 =
      ag::MakeParameter(Matrix::GlorotUniform(opt.hidden_dim, half, rng));
  // Attribute decoder back to feature space.
  auto wdec = ag::MakeParameter(
      Matrix::GlorotUniform(half, features.cols(), rng));

  ag::Adam::Options adam;
  adam.lr = opt.lr;
  ag::Adam optimizer({ws1, ws2, wa1, wa2, wdec}, adam);

  Matrix final_out;
  std::vector<ag::PairTarget> pairs =
      SampleReconstructionPairs(proximity, opt.negatives_per_node, rng,
                                /*binarize=*/true);

  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    if (epoch % 25 == 24)
      pairs = SampleReconstructionPairs(proximity, opt.negatives_per_node,
                                        rng);
    optimizer.ZeroGrad();

    VarPtr zs = ag::MatMul(
        ag::LeakyRelu(ag::SpMM(&proximity, ws1), 0.01), ws2);
    VarPtr za = ag::MatMul(
        ag::LeakyRelu(ag::SpMM(&x_sparse, wa1), 0.01), wa2);

    // Structure reconstruction via inner product on the structure view.
    // Kept as a raw sum (GAE-style) so gradients are strong enough to train
    // within the epoch budget; the attribute and consistency terms are
    // scaled to the same per-node magnitude.
    VarPtr l_struct = ag::InnerProductPairBce(zs, pairs);
    const double per_node = static_cast<double>(pairs.size()) / n;
    VarPtr xhat = ag::MatMul(za, wdec);
    VarPtr l_attr = ag::Scale(
        ag::SumSquares(ag::Sub(xhat, ag::MakeConstant(features))),
        per_node * n / static_cast<double>(features.size()));
    // Cross-view consistency.
    VarPtr l_cons = ag::Scale(ag::SumSquares(ag::Sub(zs, za)),
                              opt.consistency_weight * per_node);

    VarPtr loss = ag::Add(ag::Add(l_struct, l_attr), l_cons);
    ag::Backward(loss);
    optimizer.Step();
    if (eo.observer != nullptr) eo.observer->OnEpoch(epoch, loss->value()(0, 0));

    if (epoch == opt.epochs - 1) {
      final_out = Matrix(n, 2 * half);
      for (int i = 0; i < n; ++i) {
        std::copy(zs->value().RowPtr(i), zs->value().RowPtr(i) + half,
                  final_out.RowPtr(i));
        std::copy(za->value().RowPtr(i), za->value().RowPtr(i) + half,
                  final_out.RowPtr(i) + half);
      }
    }
  }
  return final_out;
}

}  // namespace aneci

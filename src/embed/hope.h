// HOPE-style spectral embedding of a high-order proximity matrix (Ou et
// al., KDD'16): embeds the symmetric Katz proximity K = sum_l beta^l A^l
// via its dominant eigenpairs, z_i = V_i * sqrt(|lambda|). Matrix-
// factorisation cousin of the random-walk methods in the paper's related
// work.
#ifndef ANECI_EMBED_HOPE_H_
#define ANECI_EMBED_HOPE_H_

#include "embed/embedder.h"

namespace aneci {

class Hope final : public Embedder {
 public:
  struct Options {
    int dim = 16;
    /// Katz decay; must keep beta * spectral_radius(A) < 1 for convergence.
    /// Orders are truncated at `order`, so any beta < 1 is safe here.
    double beta = 0.1;
    int order = 4;
  };

  explicit Hope(const Options& options) : options_(options) {}

  std::string name() const override { return "HOPE"; }

 private:
  /// Closed-form factorisation: EmbedOptions::epochs is ignored and the
  /// TrainObserver is never called.
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_HOPE_H_

// SDNE (Wang et al., KDD'16): structural deep network embedding. A deep
// autoencoder over neighbourhood vectors preserves second-order proximity
// (with extra weight beta on observed links) while a first-order Laplacian
// term pulls connected nodes together. Referenced in the paper's related
// work as the canonical deep pairwise method.
#ifndef ANECI_EMBED_SDNE_H_
#define ANECI_EMBED_SDNE_H_

#include "embed/embedder.h"

namespace aneci {

class Sdne final : public Embedder {
 public:
  struct Options {
    int hidden_dim = 64;
    int dim = 32;
    int epochs = 100;
    double lr = 0.01;
    /// Extra weight on reconstructing observed (non-zero) entries; SDNE's
    /// beta hyper-parameter.
    double beta = 10.0;
    /// Weight of the first-order Laplacian term (SDNE's alpha).
    double alpha = 0.2;
    int negatives_per_node = 3;
  };

  explicit Sdne(const Options& options) : options_(options) {}

  std::string name() const override { return "SDNE"; }

 private:
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_SDNE_H_

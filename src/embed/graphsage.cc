#include "embed/graphsage.h"

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "core/sage_encoder.h"
#include "embed/deepwalk.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

Matrix GraphSage::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  if (eo.epochs > 0) opt.epochs = eo.epochs;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);

  const Matrix features = graph.FeaturesOrIdentity();
  const SparseMatrix x_sparse = SparseMatrix::FromDense(features);

  auto w1 = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), opt.hidden_dim, rng));
  auto w2 = ag::MakeParameter(
      Matrix::GlorotUniform(opt.hidden_dim, opt.dim, rng));

  ag::Adam::Options adam;
  adam.lr = opt.lr;
  ag::Adam optimizer({w1, w2}, adam);

  SageSamplerOptions sampler;
  sampler.fanout = opt.fanout;

  RandomWalkOptions walk_opt;
  walk_opt.walk_length = opt.walk_length;
  walk_opt.walks_per_node = opt.walks_per_node;

  Matrix final_h;
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    optimizer.ZeroGrad();

    // Fresh sampled aggregation operators each epoch (two-layer depth).
    SparseMatrix s1 = SampleSageOperator(graph, sampler, rng);
    SparseMatrix s2 = SampleSageOperator(graph, sampler, rng);
    VarPtr h1 = ag::Relu(ag::SpMM(&s1, ag::SpMM(&x_sparse, w1)));
    VarPtr h = ag::SpMM(&s2, ag::MatMul(h1, w2));

    // Positive pairs from short random walks; uniform negatives.
    std::vector<ag::PairTarget> pairs;
    for (int w = 0; w < opt.walks_per_node; ++w) {
      for (int start = 0; start < n; ++start) {
        const std::vector<int> walk = RandomWalk(graph, start, walk_opt, rng);
        for (size_t pos = 1; pos < walk.size(); ++pos) {
          pairs.push_back({walk[0], walk[pos], 1.0});
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      for (int s = 0; s < opt.negatives_per_node; ++s) {
        const int j = static_cast<int>(rng.NextInt(n));
        if (j != i && !graph.HasEdge(i, j)) pairs.push_back({i, j, 0.0});
      }
    }

    VarPtr loss = ag::InnerProductPairBce(h, pairs);
    ag::Backward(loss);
    optimizer.Step();
    if (eo.observer != nullptr) eo.observer->OnEpoch(epoch, loss->value()(0, 0));

    if (epoch == opt.epochs - 1) {
      // Deterministic full-neighbourhood forward for the final embedding.
      const SparseMatrix full = graph.Adjacency(true).RowNormalizedL1();
      VarPtr h1_full = ag::Relu(ag::SpMM(&full, ag::SpMM(&x_sparse, w1)));
      final_h = ag::SpMM(&full, ag::MatMul(h1_full, w2))->value();
    }
  }
  return final_h;
}

}  // namespace aneci

// Dominant (Ding et al., SDM'19): deep anomaly detection on attributed
// networks. A GCN encoder feeds two decoders — a structure decoder
// sigmoid(Z Z^T) and an attribute decoder (one more GCN layer back to
// feature space). The anomaly score mixes both reconstruction errors.
#ifndef ANECI_EMBED_DOMINANT_H_
#define ANECI_EMBED_DOMINANT_H_

#include "embed/embedder.h"

namespace aneci {

class Dominant final : public Embedder, public AnomalyScorer {
 public:
  struct Options {
    int hidden_dim = 64;
    int dim = 32;
    int epochs = 100;
    double lr = 0.01;
    /// Mixing factor alpha of the score: alpha * structure + (1 - alpha) *
    /// attribute error.
    double alpha = 0.5;
    int negatives_per_node = 3;
  };

  explicit Dominant(const Options& options) : options_(options) {}

  std::string name() const override { return "Dominant"; }

 private:
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;
  std::vector<double> ScoreAnomaliesImpl(
      const Graph& graph, const EmbedOptions& options) override;

  void Run(const Graph& graph, const EmbedOptions& options, Matrix* embedding,
           std::vector<double>* scores) const;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_DOMINANT_H_

// Semi-supervised baselines for Table III and the attack experiments:
//  - GCN (Kipf & Welling, ICLR'17): two-layer graph convolutional classifier;
//  - RGCN (Zhu et al., KDD'19): robust GCN that models hidden layers as
//    Gaussians; implemented here with mean/variance streams, variance-based
//    attention and sampling at training time.
#ifndef ANECI_EMBED_GCN_CLASSIFIER_H_
#define ANECI_EMBED_GCN_CLASSIFIER_H_

#include <vector>

#include "data/datasets.h"
#include "graph/graph.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace aneci {

class GcnClassifier {
 public:
  struct Options {
    int hidden_dim = 32;
    int epochs = 150;
    double lr = 0.01;
    double weight_decay = 5e-4;
    bool robust = false;  ///< true = the RGCN variant.
  };

  explicit GcnClassifier(const Options& options) : options_(options) {}

  /// Trains on dataset.train_idx with the labels of the dataset graph.
  void Fit(const Dataset& dataset, Rng& rng);

  /// Predicted class per node of the graph used at Fit time.
  const std::vector<int>& predictions() const { return predictions_; }

  /// Test accuracy on the given node set.
  double Accuracy(const Dataset& dataset,
                  const std::vector<int>& eval_idx) const;

 private:
  Options options_;
  std::vector<int> predictions_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_GCN_CLASSIFIER_H_

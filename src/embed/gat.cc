#include "embed/gat.h"

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

void GatClassifier::Fit(const Dataset& dataset, Rng& rng) {
  const Graph& graph = dataset.graph;
  const int n = graph.num_nodes();
  const int k = graph.num_classes();
  ANECI_CHECK_GT(k, 1);

  const SparseMatrix adj = graph.Adjacency(/*add_self_loops=*/true);
  const Matrix features = graph.FeaturesOrIdentity();
  const SparseMatrix x_sparse = SparseMatrix::FromDense(features);

  std::vector<int> train_labels;
  for (int i : dataset.train_idx) train_labels.push_back(graph.labels()[i]);

  auto w1 = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), options_.hidden_dim, rng));
  auto a1_src = ag::MakeParameter(
      Matrix::GlorotUniform(1, options_.hidden_dim, rng));
  auto a1_dst = ag::MakeParameter(
      Matrix::GlorotUniform(1, options_.hidden_dim, rng));
  auto w2 =
      ag::MakeParameter(Matrix::GlorotUniform(options_.hidden_dim, k, rng));
  auto a2_src = ag::MakeParameter(Matrix::GlorotUniform(1, k, rng));
  auto a2_dst = ag::MakeParameter(Matrix::GlorotUniform(1, k, rng));

  ag::Adam::Options adam;
  adam.lr = options_.lr;
  adam.weight_decay = options_.weight_decay;
  ag::Adam optimizer({w1, a1_src, a1_dst, w2, a2_src, a2_dst}, adam);

  Matrix final_logits;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    optimizer.ZeroGrad();
    VarPtr h1 = ag::Relu(ag::GraphAttention(&adj, ag::SpMM(&x_sparse, w1),
                                            a1_src, a1_dst,
                                            options_.attention_slope));
    VarPtr logits = ag::GraphAttention(&adj, ag::MatMul(h1, w2), a2_src,
                                       a2_dst, options_.attention_slope);
    VarPtr loss =
        ag::SoftmaxCrossEntropy(logits, dataset.train_idx, train_labels);
    ag::Backward(loss);
    optimizer.Step();
    if (epoch == options_.epochs - 1) final_logits = logits->value();
  }

  predictions_.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    const double* row = final_logits.RowPtr(i);
    int best = 0;
    for (int c = 1; c < k; ++c)
      if (row[c] > row[best]) best = c;
    predictions_[i] = best;
  }
}

double GatClassifier::Accuracy(const Dataset& dataset,
                               const std::vector<int>& eval_idx) const {
  ANECI_CHECK(!predictions_.empty());
  ANECI_CHECK(!eval_idx.empty());
  int correct = 0;
  for (int i : eval_idx)
    if (predictions_[i] == dataset.graph.labels()[i]) ++correct;
  return static_cast<double>(correct) / eval_idx.size();
}

Matrix Gate::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  if (eo.epochs > 0) opt.epochs = eo.epochs;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);

  const SparseMatrix adj = graph.Adjacency(/*add_self_loops=*/true);
  const Matrix features = graph.FeaturesOrIdentity();
  const SparseMatrix x_sparse = SparseMatrix::FromDense(features);

  auto w1 = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), opt.hidden_dim, rng));
  auto a1_src = ag::MakeParameter(
      Matrix::GlorotUniform(1, opt.hidden_dim, rng));
  auto a1_dst = ag::MakeParameter(
      Matrix::GlorotUniform(1, opt.hidden_dim, rng));
  auto w2 = ag::MakeParameter(
      Matrix::GlorotUniform(opt.hidden_dim, opt.dim, rng));
  auto a2_src = ag::MakeParameter(Matrix::GlorotUniform(1, opt.dim, rng));
  auto a2_dst = ag::MakeParameter(Matrix::GlorotUniform(1, opt.dim, rng));

  ag::Adam::Options adam;
  adam.lr = opt.lr;
  ag::Adam optimizer({w1, a1_src, a1_dst, w2, a2_src, a2_dst}, adam);

  auto sample_pairs = [&]() {
    std::vector<ag::PairTarget> pairs;
    for (const Edge& e : graph.edges()) {
      pairs.push_back({e.u, e.v, 1.0});
      for (int kk = 0; kk < opt.negatives_per_edge; ++kk) {
        const int a = static_cast<int>(rng.NextInt(n));
        const int b = static_cast<int>(rng.NextInt(n));
        if (a != b && !graph.HasEdge(a, b)) pairs.push_back({a, b, 0.0});
      }
    }
    return pairs;
  };

  Matrix final_z;
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    optimizer.ZeroGrad();
    VarPtr h1 = ag::Relu(ag::GraphAttention(&adj, ag::SpMM(&x_sparse, w1),
                                            a1_src, a1_dst,
                                            opt.attention_slope));
    VarPtr z = ag::GraphAttention(&adj, ag::MatMul(h1, w2), a2_src, a2_dst,
                                  opt.attention_slope);
    VarPtr loss = ag::InnerProductPairBce(z, sample_pairs());
    ag::Backward(loss);
    optimizer.Step();
    if (eo.observer != nullptr) eo.observer->OnEpoch(epoch, loss->value()(0, 0));
    if (epoch == opt.epochs - 1) final_z = z->value();
  }
  return final_z;
}

}  // namespace aneci

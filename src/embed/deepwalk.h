// DeepWalk (Perozzi et al., KDD'14) and Node2Vec (Grover & Leskovec,
// KDD'16): truncated (optionally biased) random walks + skip-gram with
// negative sampling, trained by asynchronous SGD.
#ifndef ANECI_EMBED_DEEPWALK_H_
#define ANECI_EMBED_DEEPWALK_H_

#include <string>
#include <vector>

#include "embed/embedder.h"

namespace aneci {

struct RandomWalkOptions {
  int walks_per_node = 10;
  int walk_length = 40;
  /// Node2Vec return parameter p and in-out parameter q; p = q = 1 recovers
  /// DeepWalk's first-order walks.
  double p = 1.0;
  double q = 1.0;
};

/// Generates one truncated random walk starting at `start`.
std::vector<int> RandomWalk(const Graph& graph, int start,
                            const RandomWalkOptions& options, Rng& rng);

struct SkipGramOptions {
  int dim = 32;
  int window = 5;
  int negatives = 5;
  int epochs = 2;
  double lr = 0.025;
};

class DeepWalk final : public Embedder {
 public:
  DeepWalk(const RandomWalkOptions& walks, const SkipGramOptions& sg,
           std::string display_name = "DeepWalk")
      : walks_(walks), sg_(sg), name_(std::move(display_name)) {}

  std::string name() const override { return name_; }

 private:
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;

  RandomWalkOptions walks_;
  SkipGramOptions sg_;
  std::string name_;
};

/// Node2Vec is DeepWalk with biased second-order walks.
class Node2Vec final : public Embedder {
 public:
  Node2Vec(const RandomWalkOptions& walks, const SkipGramOptions& sg)
      : inner_(walks, sg, "Node2Vec") {}

  std::string name() const override { return "Node2Vec"; }

 private:
  /// Delegates through the inner DeepWalk's public (instrumented) entry;
  /// the nested span/call counts are deterministic like any other.
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override {
    return inner_.Embed(graph, options);
  }

  DeepWalk inner_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_DEEPWALK_H_

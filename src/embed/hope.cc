#include "embed/hope.h"

#include <cmath>

#include "linalg/eigen.h"
#include "util/check.h"

namespace aneci {

Matrix Hope::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 1);
  const int dim = std::min(opt.dim, n - 1);

  // Truncated Katz proximity K = sum_{l=1..order} beta^l A^l (symmetric for
  // undirected graphs, so an eigendecomposition doubles as the SVD).
  const SparseMatrix a = graph.Adjacency(false);
  SparseMatrix power = a;
  SparseMatrix katz(n, n);
  double coeff = opt.beta;
  katz = katz.AddScaled(a, coeff);
  for (int l = 2; l <= opt.order; ++l) {
    power = power.MultiplySparse(a, /*drop_tol=*/1e-9);
    coeff *= opt.beta;
    katz = katz.AddScaled(power, coeff);
  }

  // Largest-magnitude eigenpairs of K = smallest of -K.
  SparseMatrix neg = SparseMatrix(n, n).AddScaled(katz, -1.0);
  EigenResult eig = LanczosSmallest(neg, dim, rng);

  Matrix z(n, static_cast<int>(eig.values.size()));
  for (size_t c = 0; c < eig.values.size(); ++c) {
    const double scale = std::sqrt(std::abs(eig.values[c]));
    for (int i = 0; i < n; ++i)
      z(i, static_cast<int>(c)) = eig.vectors(i, static_cast<int>(c)) * scale;
  }
  return z;
}

}  // namespace aneci

#include "embed/anomaly_dae.h"

#include <cmath>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "core/losses.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

void AnomalyDae::Run(const Graph& graph, const EmbedOptions& eo,
                     Matrix* embedding, std::vector<double>* scores) const {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  if (eo.epochs > 0) opt.epochs = eo.epochs;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);

  const SparseMatrix a_norm = graph.Adjacency(true).RowNormalizedL1();
  const Matrix features = graph.FeaturesOrIdentity();
  const SparseMatrix x_sparse = SparseMatrix::FromDense(features);

  // Structure encoder consumes [adjacency row || attributes] jointly, as the
  // original concatenates both modalities before embedding.
  auto ws_a =
      ag::MakeParameter(Matrix::GlorotUniform(n, opt.hidden_dim, rng));
  auto ws_x = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), opt.hidden_dim, rng));
  auto ws2 = ag::MakeParameter(
      Matrix::GlorotUniform(opt.hidden_dim, opt.dim, rng));
  // Attribute decoder weight V_a (reconstructs X from the structure view).
  auto wa = ag::MakeParameter(
      Matrix::GlorotUniform(opt.dim, features.cols(), rng));

  ag::Adam::Options adam;
  adam.lr = opt.lr;
  ag::Adam optimizer({ws_a, ws_x, ws2, wa}, adam);

  std::vector<ag::PairTarget> pairs =
      SampleReconstructionPairs(a_norm, opt.negatives_per_node, rng,
                                /*binarize=*/true);

  Matrix z_final, xhat_final;
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    optimizer.ZeroGrad();
    VarPtr h = ag::LeakyRelu(
        ag::Add(ag::SpMM(&a_norm, ws_a), ag::SpMM(&x_sparse, ws_x)), 0.01);
    VarPtr z = ag::MatMul(h, ws2);
    VarPtr xhat = ag::MatMul(z, wa);

    VarPtr l_struct = ag::Scale(ag::InnerProductPairBce(z, pairs),
                                1.0 / static_cast<double>(pairs.size()));
    VarPtr l_attr = ag::Scale(
        ag::SumSquares(ag::Sub(xhat, ag::MakeConstant(features))),
        1.0 / static_cast<double>(features.size()));
    VarPtr loss = ag::Add(ag::Scale(l_struct, opt.alpha),
                          ag::Scale(l_attr, 1.0 - opt.alpha));
    ag::Backward(loss);
    optimizer.Step();
    if (eo.observer != nullptr) eo.observer->OnEpoch(epoch, loss->value()(0, 0));

    if (epoch == opt.epochs - 1) {
      z_final = z->value();
      xhat_final = xhat->value();
    }
  }

  if (embedding != nullptr) *embedding = z_final;
  if (scores != nullptr) {
    std::vector<double> err_s(n, 0.0), err_a(n, 0.0);
    std::vector<int> cnt(n, 0);
    for (const ag::PairTarget& pt : pairs) {
      double d = 0.0;
      const double* a = z_final.RowPtr(pt.u);
      const double* b = z_final.RowPtr(pt.v);
      for (int c = 0; c < z_final.cols(); ++c) d += a[c] * b[c];
      const double s = 1.0 / (1.0 + std::exp(-d));
      const double r = (s - pt.target) * (s - pt.target);
      err_s[pt.u] += r;
      err_s[pt.v] += r;
      ++cnt[pt.u];
      ++cnt[pt.v];
    }
    double max_s = 1e-12, max_a = 1e-12;
    for (int i = 0; i < n; ++i) {
      if (cnt[i] > 0) err_s[i] /= cnt[i];
      const double* p = xhat_final.RowPtr(i);
      const double* t = features.RowPtr(i);
      for (int c = 0; c < features.cols(); ++c) {
        const double d = p[c] - t[c];
        err_a[i] += d * d;
      }
      max_s = std::max(max_s, err_s[i]);
      max_a = std::max(max_a, err_a[i]);
    }
    scores->assign(n, 0.0);
    for (int i = 0; i < n; ++i) {
      (*scores)[i] = opt.alpha * err_s[i] / max_s +
                     (1.0 - opt.alpha) * err_a[i] / max_a;
    }
  }
}

Matrix AnomalyDae::EmbedImpl(const Graph& graph, const EmbedOptions& options) {
  Matrix embedding;
  Run(graph, options, &embedding, nullptr);
  return embedding;
}

std::vector<double> AnomalyDae::ScoreAnomaliesImpl(
    const Graph& graph, const EmbedOptions& options) {
  std::vector<double> scores;
  Run(graph, options, nullptr, &scores);
  return scores;
}

}  // namespace aneci

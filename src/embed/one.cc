#include "embed/one.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace aneci {
namespace {

// One weighted squared-loss SGD step on u_i . v_j ~= target.
inline double FactorStep(double* u, double* v, int dim, double target,
                         double weight, double lr) {
  double pred = 0.0;
  for (int c = 0; c < dim; ++c) pred += u[c] * v[c];
  const double residual = target - pred;
  const double g = lr * weight * residual;
  for (int c = 0; c < dim; ++c) {
    const double uc = u[c];
    u[c] += g * v[c];
    v[c] += g * uc;
  }
  return residual * residual;
}

}  // namespace

Matrix One::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  // `epochs` counts gradient passes elsewhere; one round here runs
  // inner_steps passes over every edge and attribute, so scale it down.
  if (eo.epochs > 0) opt.rounds = std::clamp(eo.epochs / 8, 4, 30);
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);
  const int dim = opt.dim;
  const Matrix features = graph.FeaturesOrIdentity();
  const int f = features.cols();

  // Shared node factor U; structure context V_s; attribute loadings V_a.
  Matrix u = Matrix::RandomUniform(n, dim, 0.5 / dim, rng);
  Matrix vs = Matrix::RandomUniform(n, dim, 0.5 / dim, rng);
  Matrix va = Matrix::RandomUniform(f, dim, 0.5 / dim, rng);

  // Non-zero attribute entries, gathered once.
  std::vector<std::pair<int, int>> attr_entries;
  for (int i = 0; i < n; ++i)
    for (int c = 0; c < f; ++c)
      if (features(i, c) != 0.0) attr_entries.push_back({i, c});

  std::vector<double> weights(n, 1.0);   // log(1/o_i), normalised to mean 1.
  std::vector<double> res_struct(n, 0.0), res_attr(n, 0.0);

  for (int round = 0; round < opt.rounds; ++round) {
    std::fill(res_struct.begin(), res_struct.end(), 0.0);
    std::fill(res_attr.begin(), res_attr.end(), 0.0);
    for (int step = 0; step < opt.inner_steps; ++step) {
      // Structure pass: observed edges as 1, sampled non-edges as 0.
      for (const Edge& e : graph.edges()) {
        res_struct[e.u] += FactorStep(u.RowPtr(e.u), vs.RowPtr(e.v), dim, 1.0,
                                      weights[e.u], opt.lr);
        res_struct[e.v] += FactorStep(u.RowPtr(e.v), vs.RowPtr(e.u), dim, 1.0,
                                      weights[e.v], opt.lr);
      }
      for (int i = 0; i < n; ++i) {
        const int j = static_cast<int>(rng.NextInt(n));
        if (j == i || graph.HasEdge(i, j)) continue;
        res_struct[i] += FactorStep(u.RowPtr(i), vs.RowPtr(j), dim, 0.0,
                                    weights[i], opt.lr);
      }
      // Attribute pass.
      for (const auto& [i, c] : attr_entries) {
        res_attr[i] += opt.attr_weight *
                       FactorStep(u.RowPtr(i), va.RowPtr(c), dim,
                                  features(i, c), weights[i], opt.lr);
      }
      for (int i = 0; i < n; ++i) {
        const int c = static_cast<int>(rng.NextInt(f));
        if (features(i, c) != 0.0) continue;
        res_attr[i] += opt.attr_weight *
                       FactorStep(u.RowPtr(i), va.RowPtr(c), dim, 0.0,
                                  weights[i], opt.lr);
      }
    }

    // Outlier re-estimation: o_i = residual share; w_i = log(1/o_i),
    // rescaled to mean 1 (ONE's multiplicative update, simplified).
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += res_struct[i] + res_attr[i];
    if (eo.observer != nullptr) eo.observer->OnEpoch(round, total / n);
    if (total > 0.0) {
      double mean_w = 0.0;
      for (int i = 0; i < n; ++i) {
        const double o =
            std::max((res_struct[i] + res_attr[i]) / total, 1e-9);
        weights[i] = std::log(1.0 / o);
        mean_w += weights[i];
      }
      mean_w /= n;
      for (double& w : weights) w = std::max(w / mean_w, 0.05);
    }
  }

  return u;
}

}  // namespace aneci

#include "embed/aneci_embedder.h"

#include "anomaly/anomaly_score.h"
#include "util/check.h"

namespace aneci {

const char* AneciVariantName(AneciVariant variant) {
  switch (variant) {
    case AneciVariant::kRawFeature:
      return "Raw feature";
    case AneciVariant::kEncoder:
      return "+Encoder";
    case AneciVariant::kModularity:
      return "+Modularity";
    case AneciVariant::kFull:
      return "AnECI";
  }
  return "?";
}

std::string AneciEmbedder::name() const { return AneciVariantName(variant_); }

AneciConfig AneciEmbedder::EffectiveConfig(const EmbedOptions& options) const {
  AneciConfig cfg = config_;
  cfg.seed = options.rng->NextU64();
  if (options.dim > 1) cfg.embed_dim = options.dim;
  if (options.epochs > 0) cfg.epochs = options.epochs;
  switch (variant_) {
    case AneciVariant::kEncoder:
      cfg.epochs = 0;  // Random-weight GCN forward only.
      break;
    case AneciVariant::kModularity:
      cfg.beta2 = 0.0;
      break;
    default:
      break;
  }
  return cfg;
}

Matrix AneciEmbedder::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  if (variant_ == AneciVariant::kRawFeature) {
    Matrix x = graph.FeaturesOrIdentity();
    last_p_ = RowSoftmax(x);
    return x;
  }
  Aneci model(EffectiveConfig(eo));
  Aneci::EpochCallback on_epoch = nullptr;
  if (eo.observer != nullptr) {
    TrainObserver* observer = eo.observer;
    on_epoch = [observer](const AneciEpochStats& stats, const Matrix&,
                          const Matrix&) {
      observer->OnEpoch(stats.epoch, stats.loss);
    };
  }
  // Embed() has no error channel, so divergence past the watchdog's rollback
  // budget aborts with the status message instead of returning garbage.
  StatusOr<AneciResult> result = model.TrainWithResilience(graph, on_epoch);
  ANECI_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  last_p_ = result.value().p;
  return std::move(result).value().z;
}

std::vector<double> AneciEmbedder::ScoreAnomaliesImpl(const Graph& graph,
                                                      const EmbedOptions& eo) {
  // Through the public entry so the nested embed is itself instrumented.
  Embed(graph, eo);
  return MembershipEntropyScores(last_p_);
}

}  // namespace aneci

#include "embed/aneci_embedder.h"

#include "anomaly/anomaly_score.h"
#include "util/check.h"

namespace aneci {

const char* AneciVariantName(AneciVariant variant) {
  switch (variant) {
    case AneciVariant::kRawFeature:
      return "Raw feature";
    case AneciVariant::kEncoder:
      return "+Encoder";
    case AneciVariant::kModularity:
      return "+Modularity";
    case AneciVariant::kFull:
      return "AnECI";
  }
  return "?";
}

std::string AneciEmbedder::name() const { return AneciVariantName(variant_); }

AneciConfig AneciEmbedder::EffectiveConfig(Rng& rng) const {
  AneciConfig cfg = config_;
  cfg.seed = rng.NextU64();
  switch (variant_) {
    case AneciVariant::kEncoder:
      cfg.epochs = 0;  // Random-weight GCN forward only.
      break;
    case AneciVariant::kModularity:
      cfg.beta2 = 0.0;
      break;
    default:
      break;
  }
  return cfg;
}

Matrix AneciEmbedder::Embed(const Graph& graph, Rng& rng) {
  if (variant_ == AneciVariant::kRawFeature) {
    Matrix x = graph.FeaturesOrIdentity();
    last_p_ = RowSoftmax(x);
    return x;
  }
  Aneci model(EffectiveConfig(rng));
  // Embed() has no error channel, so divergence past the watchdog's rollback
  // budget aborts with the status message instead of returning garbage.
  StatusOr<AneciResult> result = model.TrainWithResilience(graph);
  ANECI_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  last_p_ = result.value().p;
  return std::move(result).value().z;
}

std::vector<double> AneciEmbedder::ScoreAnomalies(const Graph& graph,
                                                  Rng& rng) {
  Embed(graph, rng);
  return MembershipEntropyScores(last_p_);
}

}  // namespace aneci

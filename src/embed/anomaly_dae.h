// AnomalyDAE (Fan et al., ICASSP'20): dual autoencoder for anomaly
// detection. A structure encoder embeds adjacency rows, an attribute encoder
// embeds transposed attributes; the decoders reconstruct adjacency via
// cross inner products and attributes via Z_s V_a^T. Scores mix both errors
// with the (alpha, theta, eta) weighting of the original.
#ifndef ANECI_EMBED_ANOMALY_DAE_H_
#define ANECI_EMBED_ANOMALY_DAE_H_

#include "embed/embedder.h"

namespace aneci {

class AnomalyDae final : public Embedder, public AnomalyScorer {
 public:
  struct Options {
    int hidden_dim = 64;
    int dim = 32;
    int epochs = 100;
    double lr = 0.01;
    /// Structure-vs-attribute mix (the paper's protocol sets alpha = 0.3 for
    /// AnomalyDAE).
    double alpha = 0.3;
    int negatives_per_node = 3;
  };

  explicit AnomalyDae(const Options& options) : options_(options) {}

  std::string name() const override { return "AnomalyDAE"; }

 private:
  Matrix EmbedImpl(const Graph& graph, const EmbedOptions& options) override;
  std::vector<double> ScoreAnomaliesImpl(
      const Graph& graph, const EmbedOptions& options) override;

  void Run(const Graph& graph, const EmbedOptions& options, Matrix* embedding,
           std::vector<double>* scores) const;

  Options options_;
};

}  // namespace aneci

#endif  // ANECI_EMBED_ANOMALY_DAE_H_

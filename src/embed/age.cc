#include "embed/age.h"

#include <algorithm>
#include <numeric>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

Matrix Age::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  if (eo.epochs > 0) opt.epochs = eo.epochs;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);

  // Laplacian smoothing: X' = (0.5 I + 0.5 S)^t X with S the symmetric
  // normalised adjacency. This is AGE's low-pass filter with k = 2/3
  // replaced by the 1/2 used in its released configuration.
  const SparseMatrix s_norm = graph.NormalizedAdjacency();
  Matrix smoothed = graph.FeaturesOrIdentity();
  for (int t = 0; t < opt.filter_hops; ++t) {
    Matrix propagated = s_norm.Multiply(smoothed);
    propagated *= 0.5;
    smoothed *= 0.5;
    smoothed += propagated;
  }
  const SparseMatrix x_sparse = SparseMatrix::FromDense(smoothed);

  auto w = ag::MakeParameter(
      Matrix::GlorotUniform(smoothed.cols(), opt.dim, rng));
  ag::Adam::Options adam;
  adam.lr = opt.lr;
  ag::Adam optimizer({w}, adam);

  // Initial training pairs: edges positive, random non-edges negative.
  std::vector<ag::PairTarget> pairs;
  auto seed_pairs = [&]() {
    pairs.clear();
    for (const Edge& e : graph.edges()) pairs.push_back({e.u, e.v, 1.0});
    for (int i = 0; i < n; ++i) {
      const int j = static_cast<int>(rng.NextInt(n));
      if (i != j && !graph.HasEdge(i, j)) pairs.push_back({i, j, 0.0});
    }
  };
  seed_pairs();

  Matrix final_z;
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    optimizer.ZeroGrad();
    VarPtr z = ag::SpMM(&x_sparse, w);
    VarPtr loss = ag::Scale(ag::InnerProductPairBce(z, pairs),
                            1.0 / static_cast<double>(pairs.size()));
    ag::Backward(loss);
    optimizer.Step();
    if (eo.observer != nullptr) eo.observer->OnEpoch(epoch, loss->value()(0, 0));

    // Adaptive relabelling: rank candidate pairs by current cosine
    // similarity; the most similar become positives, the least negatives.
    if (opt.adaptive_every > 0 &&
        (epoch + 1) % opt.adaptive_every == 0) {
      const Matrix& zm = z->value();
      struct Cand {
        int u, v;
        double sim;
      };
      std::vector<Cand> cands;
      cands.reserve(static_cast<size_t>(n) * opt.candidates_per_node);
      for (int i = 0; i < n; ++i) {
        for (int c = 0; c < opt.candidates_per_node; ++c) {
          const int j = static_cast<int>(rng.NextInt(n));
          if (i == j) continue;
          cands.push_back(
              {i, j, CosineSimilarity(zm.RowPtr(i), zm.RowPtr(j), zm.cols())});
        }
      }
      std::sort(cands.begin(), cands.end(),
                [](const Cand& a, const Cand& b) { return a.sim > b.sim; });
      const size_t take =
          static_cast<size_t>(cands.size() * opt.select_fraction);
      pairs.clear();
      for (const Edge& e : graph.edges()) pairs.push_back({e.u, e.v, 1.0});
      for (size_t i = 0; i < take && i < cands.size(); ++i)
        pairs.push_back({cands[i].u, cands[i].v, 1.0});
      for (size_t i = 0; i < take && i < cands.size(); ++i) {
        const Cand& c = cands[cands.size() - 1 - i];
        pairs.push_back({c.u, c.v, 0.0});
      }
    }
    if (epoch == opt.epochs - 1) final_z = z->value();
  }
  return final_z;
}

}  // namespace aneci

#include "embed/spectral.h"

#include "linalg/eigen.h"
#include "linalg/kmeans.h"
#include "util/check.h"

namespace aneci {
namespace {

// L = I - D^{-1/2} A D^{-1/2} (self-loop-free adjacency).
SparseMatrix NormalizedLaplacian(const Graph& graph) {
  const SparseMatrix norm =
      graph.Adjacency(false).SymmetricallyNormalized();
  SparseMatrix identity = SparseMatrix::Identity(graph.num_nodes());
  return identity.AddScaled(norm, -1.0);
}

}  // namespace

Matrix LaplacianEigenmaps::EmbedImpl(const Graph& graph,
                                     const EmbedOptions& eo) {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 1);
  const int dim = std::min(opt.dim, n - 1);

  const SparseMatrix laplacian = NormalizedLaplacian(graph);
  // Request one extra pair: the smallest eigenvector (constant within each
  // connected component, eigenvalue 0) carries no discriminative signal.
  EigenResult eig =
      LanczosSmallest(laplacian, dim + 1, rng, opt.lanczos_steps);

  const int available = static_cast<int>(eig.values.size());
  const int take = std::max(1, std::min(dim, available - 1));
  Matrix embedding(n, take);
  for (int c = 0; c < take; ++c)
    for (int i = 0; i < n; ++i) embedding(i, c) = eig.vectors(i, c + 1);
  return embedding;
}

std::vector<int> SpectralClustering(const Graph& graph, int k, Rng& rng) {
  LaplacianEigenmaps::Options opt;
  opt.dim = k;
  LaplacianEigenmaps eigenmaps(opt);
  EmbedOptions eo;
  eo.rng = &rng;
  Matrix embedding = RowNormalizeL2(eigenmaps.Embed(graph, eo));
  KMeansOptions km;
  km.restarts = 3;
  return KMeans(embedding, k, rng, km).assignment;
}

}  // namespace aneci

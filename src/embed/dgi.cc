#include "embed/dgi.h"

#include <numeric>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

Matrix Dgi::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  Options opt = options_;
  if (eo.dim > 1) opt.dim = eo.dim;
  if (eo.epochs > 0) opt.epochs = eo.epochs;
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);

  const SparseMatrix s_norm = graph.NormalizedAdjacency();
  const Matrix features = graph.FeaturesOrIdentity();
  const SparseMatrix x_sparse = SparseMatrix::FromDense(features);

  auto w1 = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), opt.dim, rng));
  auto w_disc = ag::MakeParameter(
      Matrix::GlorotUniform(opt.dim, opt.dim, rng));

  ag::Adam::Options adam;
  adam.lr = opt.lr;
  ag::Adam optimizer({w1, w_disc}, adam);

  // BCE targets: 1 for real patches, 0 for corrupted ones.
  Matrix targets(2 * n, 1);
  for (int i = 0; i < n; ++i) targets(i, 0) = 1.0;

  Matrix final_h;
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    optimizer.ZeroGrad();

    // Corruption: shuffle feature rows, keep the topology.
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (int i = n - 1; i > 0; --i)
      std::swap(perm[i], perm[rng.NextInt(i + 1)]);
    const SparseMatrix x_corrupt =
        SparseMatrix::FromDense(features.SelectRows(perm));

    // Encoder on the real and corrupted graphs.
    VarPtr h = ag::Relu(ag::SpMM(&s_norm, ag::SpMM(&x_sparse, w1)));
    VarPtr h_neg = ag::Relu(ag::SpMM(&s_norm, ag::SpMM(&x_corrupt, w1)));

    // Readout: sigmoid of the mean patch representation.
    VarPtr summary = ag::Sigmoid(ag::MeanRows(h));  // (1 x dim).

    // Bilinear discriminator: score_i = h_i W s^T.
    VarPtr ws = ag::MatMulTransB(w_disc, summary);   // (dim x 1).
    VarPtr pos_scores = ag::MatMul(h, ws);           // (n x 1).
    VarPtr neg_scores = ag::MatMul(h_neg, ws);

    // Stack scores and apply BCE with the fixed targets. (Concatenate by
    // building the loss as a sum of the two halves.)
    Matrix ones(n, 1, 1.0), zeros(n, 1, 0.0);
    VarPtr loss =
        ag::Add(ag::BinaryCrossEntropySum(ag::Sigmoid(pos_scores), ones),
                ag::BinaryCrossEntropySum(ag::Sigmoid(neg_scores), zeros));
    loss = ag::Scale(loss, 1.0 / (2.0 * n));

    ag::Backward(loss);
    optimizer.Step();
    if (eo.observer != nullptr) eo.observer->OnEpoch(epoch, loss->value()(0, 0));
    if (epoch == opt.epochs - 1) final_h = h->value();
  }
  return final_h;
}

}  // namespace aneci

#include "embed/deepwalk.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace aneci {
namespace {

// Degree-proportional "unigram^0.75" negative sampler.
class NegativeSampler {
 public:
  NegativeSampler(const Graph& graph) {
    cum_.resize(graph.num_nodes());
    double acc = 0.0;
    for (int i = 0; i < graph.num_nodes(); ++i) {
      acc += std::pow(graph.Degree(i) + 1.0, 0.75);
      cum_[i] = acc;
    }
  }

  int Sample(Rng& rng) const {
    const double t = rng.NextDouble() * cum_.back();
    const auto it = std::lower_bound(cum_.begin(), cum_.end(), t);
    return static_cast<int>(std::min<size_t>(it - cum_.begin(),
                                             cum_.size() - 1));
  }

 private:
  std::vector<double> cum_;
};

// One SGNS update for (center, context, label). Updates both tables in
// place and returns the predicted probability, so callers tracking the
// objective can form the BCE term without recomputing the dot product.
inline double SgnsUpdate(double* center, double* context, int dim,
                         double label, double lr) {
  double dot = 0.0;
  for (int i = 0; i < dim; ++i) dot += center[i] * context[i];
  const double s = 1.0 / (1.0 + std::exp(-dot));
  const double g = lr * (label - s);
  for (int i = 0; i < dim; ++i) {
    const double c = center[i];
    center[i] += g * context[i];
    context[i] += g * c;
  }
  return s;
}

}  // namespace

std::vector<int> RandomWalk(const Graph& graph, int start,
                            const RandomWalkOptions& options, Rng& rng) {
  std::vector<int> walk;
  walk.reserve(options.walk_length);
  walk.push_back(start);
  if (graph.Neighbors(start).empty()) return walk;

  const bool biased = options.p != 1.0 || options.q != 1.0;
  while (static_cast<int>(walk.size()) < options.walk_length) {
    const int cur = walk.back();
    const std::vector<int>& nbrs = graph.Neighbors(cur);
    if (nbrs.empty()) break;
    if (!biased || walk.size() < 2) {
      walk.push_back(nbrs[rng.NextInt(static_cast<int64_t>(nbrs.size()))]);
      continue;
    }
    // Node2Vec second-order bias: weight 1/p to return, 1 to stay at
    // distance 1 from prev, 1/q to move outward. Rejection sampling keeps it
    // O(1) amortised per step.
    const int prev = walk[walk.size() - 2];
    const double max_w =
        std::max({1.0, 1.0 / options.p, 1.0 / options.q});
    for (int attempt = 0; attempt < 64; ++attempt) {
      const int cand = nbrs[rng.NextInt(static_cast<int64_t>(nbrs.size()))];
      double w;
      if (cand == prev) {
        w = 1.0 / options.p;
      } else if (graph.HasEdge(cand, prev)) {
        w = 1.0;
      } else {
        w = 1.0 / options.q;
      }
      if (rng.NextDouble() * max_w <= w) {
        walk.push_back(cand);
        break;
      }
      if (attempt == 63) walk.push_back(cand);  // Give up rejecting.
    }
  }
  return walk;
}

Matrix DeepWalk::EmbedImpl(const Graph& graph, const EmbedOptions& eo) {
  RandomWalkOptions walks = walks_;
  SkipGramOptions sg = sg_;
  if (eo.dim > 1) sg.dim = eo.dim;
  // `epochs` parameterises gradient-trained methods; one corpus pass of
  // skip-gram already visits every node walks_per_node times, so cap the
  // pass count instead of scaling it linearly.
  if (eo.epochs > 0) sg.epochs = std::clamp(eo.epochs / 40, 1, 3);
  Rng& rng = *eo.rng;
  const int n = graph.num_nodes();
  const int dim = sg.dim;
  ANECI_CHECK_GT(n, 0);

  Matrix center = Matrix::RandomUniform(n, dim, 0.5 / dim, rng);
  Matrix context(n, dim);
  NegativeSampler sampler(graph);

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;

  const int64_t total_walks = static_cast<int64_t>(sg.epochs) *
                              walks.walks_per_node * n;
  int64_t done_walks = 0;
  for (int epoch = 0; epoch < sg.epochs; ++epoch) {
    // Mean BCE over this corpus pass, tracked only when someone listens.
    double epoch_loss = 0.0;
    int64_t epoch_terms = 0;
    for (int w = 0; w < walks.walks_per_node; ++w) {
      for (int i = n - 1; i > 0; --i)
        std::swap(order[i], order[rng.NextInt(i + 1)]);
      for (int start : order) {
        // Linear learning-rate decay, word2vec style.
        const double progress =
            static_cast<double>(done_walks) / std::max<int64_t>(1, total_walks);
        const double lr = sg.lr * std::max(0.05, 1.0 - progress);
        ++done_walks;

        const std::vector<int> walk = RandomWalk(graph, start, walks, rng);
        for (size_t pos = 0; pos < walk.size(); ++pos) {
          const int lo = static_cast<int>(
              std::max<int64_t>(0, static_cast<int64_t>(pos) - sg.window));
          const int hi = static_cast<int>(
              std::min<size_t>(walk.size() - 1, pos + sg.window));
          for (int ctx = lo; ctx <= hi; ++ctx) {
            if (ctx == static_cast<int>(pos)) continue;
            const double s_pos = SgnsUpdate(center.RowPtr(walk[pos]),
                                            context.RowPtr(walk[ctx]), dim,
                                            1.0, lr);
            if (eo.observer != nullptr) {
              epoch_loss += -std::log(std::max(1e-12, s_pos));
              ++epoch_terms;
            }
            for (int neg = 0; neg < sg.negatives; ++neg) {
              const int nid = sampler.Sample(rng);
              if (nid == walk[ctx]) continue;
              const double s_neg = SgnsUpdate(center.RowPtr(walk[pos]),
                                              context.RowPtr(nid), dim, 0.0,
                                              lr);
              if (eo.observer != nullptr) {
                epoch_loss += -std::log(std::max(1e-12, 1.0 - s_neg));
                ++epoch_terms;
              }
            }
          }
        }
      }
    }
    if (eo.observer != nullptr)
      eo.observer->OnEpoch(epoch,
                           epoch_loss / std::max<int64_t>(1, epoch_terms));
  }
  return center;
}

}  // namespace aneci

#include "analysis/defense_score.h"

#include <set>

#include "util/check.h"

namespace aneci {

double DefenseScore(const Graph& attacked, const std::vector<Edge>& fake_edges,
                    const Matrix& embedding) {
  ANECI_CHECK_EQ(embedding.rows(), attacked.num_nodes());
  if (fake_edges.empty()) return 1.0;

  std::set<Edge> fake_set(fake_edges.begin(), fake_edges.end());
  auto score = [&](const Edge& e) {
    return 1.0 - CosineSimilarity(embedding.RowPtr(e.u), embedding.RowPtr(e.v),
                                  embedding.cols());
  };

  double fake_sum = 0.0, real_sum = 0.0;
  int real_count = 0;
  for (const Edge& e : attacked.edges()) {
    if (fake_set.count(e)) {
      fake_sum += score(e);
    } else {
      real_sum += score(e);
      ++real_count;
    }
  }
  ANECI_CHECK_GT(real_count, 0);
  const double fake_mean = fake_sum / fake_edges.size();
  const double real_mean = real_sum / real_count;
  if (real_mean <= 1e-12) return fake_mean > 1e-12 ? 1e6 : 1.0;
  return fake_mean / real_mean;
}

}  // namespace aneci

#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace aneci {
namespace {

// Binary-searches the Gaussian bandwidth of row i so the conditional
// distribution has the requested perplexity; fills p_row (length n).
void RowConditional(const Matrix& d2, int i, double perplexity,
                    std::vector<double>& p_row) {
  const int n = d2.rows();
  double beta = 1.0, beta_lo = 0.0, beta_hi = 1e12;
  const double target = std::log(perplexity);
  for (int iter = 0; iter < 50; ++iter) {
    double sum = 0.0, dot = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) {
        p_row[j] = 0.0;
        continue;
      }
      p_row[j] = std::exp(-beta * d2(i, j));
      sum += p_row[j];
      dot += beta * d2(i, j) * p_row[j];
    }
    if (sum <= 1e-300) {
      beta /= 2.0;
      continue;
    }
    const double entropy = std::log(sum) + dot / sum;
    for (int j = 0; j < n; ++j) p_row[j] /= sum;
    if (std::abs(entropy - target) < 1e-4) return;
    if (entropy > target) {
      beta_lo = beta;
      beta = beta_hi > 1e11 ? beta * 2.0 : (beta + beta_hi) / 2.0;
    } else {
      beta_hi = beta;
      beta = (beta + beta_lo) / 2.0;
    }
  }
}

}  // namespace

Matrix Tsne(const Matrix& points, const TsneOptions& options, Rng& rng) {
  const int n = points.rows();
  ANECI_CHECK_GT(n, 1);

  // Pairwise squared distances.
  Matrix d2(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double s = 0.0;
      const double* a = points.RowPtr(i);
      const double* b = points.RowPtr(j);
      for (int c = 0; c < points.cols(); ++c) {
        const double d = a[c] - b[c];
        s += d * d;
      }
      d2(i, j) = s;
      d2(j, i) = s;
    }
  }

  // Symmetrised joint P.
  Matrix p(n, n);
  {
    std::vector<double> row(n);
    for (int i = 0; i < n; ++i) {
      RowConditional(d2, i, options.perplexity, row);
      for (int j = 0; j < n; ++j) p(i, j) = row[j];
    }
  }
  double p_sum = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) p_sum += p(i, j);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double v = std::max((p(i, j) + p(j, i)) / (2.0 * p_sum), 1e-12);
      p(i, j) = v;
      p(j, i) = v;
    }

  Matrix y = Matrix::RandomNormal(n, 2, 1e-2, rng);
  Matrix velocity(n, 2);
  Matrix grad(n, 2);
  std::vector<double> qnum(n);

  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;

    // Q numerators (student-t kernel) and normaliser.
    double z = 0.0;
    grad.SetZero();
    // First pass for Z.
    Matrix num(n, n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double dy0 = y(i, 0) - y(j, 0);
        const double dy1 = y(i, 1) - y(j, 1);
        const double v = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
        num(i, j) = v;
        num(j, i) = v;
        z += 2.0 * v;
      }
    }
    z = std::max(z, 1e-12);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double q = std::max(num(i, j) / z, 1e-12);
        const double coeff =
            4.0 * (exaggeration * p(i, j) - q) * num(i, j);
        grad(i, 0) += coeff * (y(i, 0) - y(j, 0));
        grad(i, 1) += coeff * (y(i, 1) - y(j, 1));
      }
    }
    for (int i = 0; i < n; ++i) {
      for (int c = 0; c < 2; ++c) {
        velocity(i, c) = options.momentum * velocity(i, c) -
                         options.learning_rate * grad(i, c);
        y(i, c) += velocity(i, c);
      }
    }
    (void)qnum;
  }
  return y;
}

}  // namespace aneci

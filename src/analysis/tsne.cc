#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/thread_pool.h"

namespace aneci {
namespace {

// Fixed chunking for the scalar reductions (P normaliser, student-t Z):
// at most 64 chunks, a function of n only, so the chunk-ordered merges are
// bit-identical for every ANECI_THREADS setting.
int64_t ReductionGrain(int64_t n) {
  return std::max<int64_t>(1, (n + 63) / 64);
}

// Binary-searches the Gaussian bandwidth of row i so the conditional
// distribution has the requested perplexity; fills p_row (length n).
void RowConditional(const Matrix& d2, int i, double perplexity,
                    std::vector<double>& p_row) {
  const int n = d2.rows();
  double beta = 1.0, beta_lo = 0.0, beta_hi = 1e12;
  const double target = std::log(perplexity);
  for (int iter = 0; iter < 50; ++iter) {
    double sum = 0.0, dot = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) {
        p_row[j] = 0.0;
        continue;
      }
      p_row[j] = std::exp(-beta * d2(i, j));
      sum += p_row[j];
      dot += beta * d2(i, j) * p_row[j];
    }
    if (sum <= 1e-300) {
      beta /= 2.0;
      continue;
    }
    const double entropy = std::log(sum) + dot / sum;
    for (int j = 0; j < n; ++j) p_row[j] /= sum;
    if (std::abs(entropy - target) < 1e-4) return;
    if (entropy > target) {
      beta_lo = beta;
      beta = beta_hi > 1e11 ? beta * 2.0 : (beta + beta_hi) / 2.0;
    } else {
      beta_hi = beta;
      beta = (beta + beta_lo) / 2.0;
    }
  }
}

}  // namespace

Matrix Tsne(const Matrix& points, const TsneOptions& options, Rng& rng) {
  const int n = points.rows();
  ANECI_CHECK_GT(n, 1);

  // Pairwise squared distances, row-parallel. Each thread owns whole rows
  // of d2; the mirrored entry (j, i) is recomputed rather than copied —
  // (a-b)^2 and (b-a)^2 are bitwise equal, so the matrix stays symmetric.
  Matrix d2(n, n);
  ParallelFor(0, n, ReductionGrain(n), [&](int64_t lo, int64_t hi) {
    for (int i = static_cast<int>(lo); i < hi; ++i) {
      const double* a = points.RowPtr(i);
      double* drow = d2.RowPtr(i);
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const double* b = points.RowPtr(j);
        double s = 0.0;
        for (int c = 0; c < points.cols(); ++c) {
          const double d = a[c] - b[c];
          s += d * d;
        }
        drow[j] = s;
      }
    }
  });

  // Symmetrised joint P. The perplexity search is independent per row.
  Matrix p(n, n);
  ParallelFor(0, n, ReductionGrain(n), [&](int64_t lo, int64_t hi) {
    std::vector<double> row(n);
    for (int i = static_cast<int>(lo); i < hi; ++i) {
      RowConditional(d2, i, options.perplexity, row);
      for (int j = 0; j < n; ++j) p(i, j) = row[j];
    }
  });
  const int64_t sum_chunks = NumChunks(0, n, ReductionGrain(n));
  std::vector<double> p_sum_part(sum_chunks, 0.0);
  ParallelForChunks(0, n, ReductionGrain(n),
                    [&](int64_t lo, int64_t hi, int64_t ci) {
    double local = 0.0;
    for (int i = static_cast<int>(lo); i < hi; ++i)
      for (int j = 0; j < n; ++j) local += p(i, j);
    p_sum_part[ci] = local;
  });
  double p_sum = 0.0;
  for (double v : p_sum_part) p_sum += v;
  // Pass 1 rewrites the upper triangle (reads the still-untouched lower
  // one); pass 2 mirrors it down. Both passes only write rows they own.
  ParallelFor(0, n, ReductionGrain(n), [&](int64_t lo, int64_t hi) {
    for (int i = static_cast<int>(lo); i < hi; ++i)
      for (int j = i + 1; j < n; ++j)
        p(i, j) = std::max((p(i, j) + p(j, i)) / (2.0 * p_sum), 1e-12);
  });
  ParallelFor(0, n, ReductionGrain(n), [&](int64_t lo, int64_t hi) {
    for (int i = static_cast<int>(lo); i < hi; ++i)
      for (int j = 0; j < i; ++j) p(i, j) = p(j, i);
  });

  Matrix y = Matrix::RandomNormal(n, 2, 1e-2, rng);
  Matrix velocity(n, 2);
  Matrix grad(n, 2);

  std::vector<double> z_part(sum_chunks, 0.0);
  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;

    // Q numerators (student-t kernel): upper triangle only, row-parallel,
    // with the Z normaliser reduced per chunk and merged in chunk order.
    grad.SetZero();
    Matrix num(n, n);
    ParallelForChunks(0, n, ReductionGrain(n),
                      [&](int64_t lo, int64_t hi, int64_t ci) {
      double local_z = 0.0;
      for (int i = static_cast<int>(lo); i < hi; ++i) {
        for (int j = i + 1; j < n; ++j) {
          const double dy0 = y(i, 0) - y(j, 0);
          const double dy1 = y(i, 1) - y(j, 1);
          const double v = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
          num(i, j) = v;
          local_z += 2.0 * v;
        }
      }
      z_part[ci] = local_z;
    });
    double z = 0.0;
    for (double v : z_part) z += v;
    z = std::max(z, 1e-12);

    // Gradient rows are independent; num is read via the upper triangle.
    ParallelFor(0, n, ReductionGrain(n), [&](int64_t lo, int64_t hi) {
      for (int i = static_cast<int>(lo); i < hi; ++i) {
        for (int j = 0; j < n; ++j) {
          if (i == j) continue;
          const double nv = i < j ? num(i, j) : num(j, i);
          const double q = std::max(nv / z, 1e-12);
          const double coeff = 4.0 * (exaggeration * p(i, j) - q) * nv;
          grad(i, 0) += coeff * (y(i, 0) - y(j, 0));
          grad(i, 1) += coeff * (y(i, 1) - y(j, 1));
        }
      }
    });
    for (int i = 0; i < n; ++i) {
      for (int c = 0; c < 2; ++c) {
        velocity(i, c) = options.momentum * velocity(i, c) -
                         options.learning_rate * grad(i, c);
        y(i, c) += velocity(i, c);
      }
    }
  }
  return y;
}

}  // namespace aneci

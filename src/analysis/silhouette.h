// Mean silhouette coefficient: the quantitative companion to the Fig. 8
// t-SNE plots (how cleanly classes separate in an embedding).
#ifndef ANECI_ANALYSIS_SILHOUETTE_H_
#define ANECI_ANALYSIS_SILHOUETTE_H_

#include <vector>

#include "linalg/matrix.h"

namespace aneci {

/// Mean silhouette over all points, Euclidean distance; in [-1, 1].
/// Points in singleton clusters contribute 0.
double MeanSilhouette(const Matrix& points, const std::vector<int>& labels);

}  // namespace aneci

#endif  // ANECI_ANALYSIS_SILHOUETTE_H_

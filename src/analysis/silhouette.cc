#include "analysis/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace aneci {

double MeanSilhouette(const Matrix& points, const std::vector<int>& labels) {
  const int n = points.rows();
  ANECI_CHECK_EQ(static_cast<int>(labels.size()), n);
  int k = 0;
  for (int y : labels) k = std::max(k, y + 1);
  std::vector<int> counts(k, 0);
  for (int y : labels) ++counts[y];

  auto dist = [&](int i, int j) {
    double s = 0.0;
    const double* a = points.RowPtr(i);
    const double* b = points.RowPtr(j);
    for (int c = 0; c < points.cols(); ++c) {
      const double d = a[c] - b[c];
      s += d * d;
    }
    return std::sqrt(s);
  };

  double total = 0.0;
  std::vector<double> mean_to(k);
  for (int i = 0; i < n; ++i) {
    std::fill(mean_to.begin(), mean_to.end(), 0.0);
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      mean_to[labels[j]] += dist(i, j);
    }
    const int own = labels[i];
    if (counts[own] <= 1) continue;  // Singleton: contributes 0.
    const double a = mean_to[own] / (counts[own] - 1);
    double b = std::numeric_limits<double>::max();
    for (int c = 0; c < k; ++c) {
      if (c == own || counts[c] == 0) continue;
      b = std::min(b, mean_to[c] / counts[c]);
    }
    if (b == std::numeric_limits<double>::max()) continue;
    total += (b - a) / std::max(a, b);
  }
  return total / n;
}

}  // namespace aneci

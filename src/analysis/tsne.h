// Exact t-SNE (van der Maaten & Hinton 2008) for the Fig. 8 visualisation:
// projects embeddings to 2-D. O(N^2) per iteration — intended for the
// few-thousand-node graphs in this repo (subsample first if larger).
#ifndef ANECI_ANALYSIS_TSNE_H_
#define ANECI_ANALYSIS_TSNE_H_

#include "linalg/matrix.h"
#include "util/rng.h"

namespace aneci {

struct TsneOptions {
  double perplexity = 30.0;
  int iterations = 300;
  double learning_rate = 50.0;  ///< >100 overshoots under this P-scaling.
  double early_exaggeration = 4.0;
  int exaggeration_iters = 50;
  double momentum = 0.8;
};

/// Returns (N x 2) coordinates.
Matrix Tsne(const Matrix& points, const TsneOptions& options, Rng& rng);

}  // namespace aneci

#endif  // ANECI_ANALYSIS_TSNE_H_

// Defense score DS(delta) of Section VI-B1: given an embedding learned on an
// attacked graph, score each edge with s(e) = 1 - cos(z_u, z_v); the defense
// score is the ratio of the mean anomaly score of fake edges to that of real
// edges. Higher = the embedding kept fake edges at arm's length.
#ifndef ANECI_ANALYSIS_DEFENSE_SCORE_H_
#define ANECI_ANALYSIS_DEFENSE_SCORE_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"

namespace aneci {

/// `attacked` must contain both the original edges and `fake_edges`.
double DefenseScore(const Graph& attacked, const std::vector<Edge>& fake_edges,
                    const Matrix& embedding);

}  // namespace aneci

#endif  // ANECI_ANALYSIS_DEFENSE_SCORE_H_

#include "graph/modularity.h"

#include <algorithm>

#include "util/check.h"

namespace aneci {

double Modularity(const Graph& graph, const std::vector<int>& assignment) {
  ANECI_CHECK_EQ(static_cast<int>(assignment.size()), graph.num_nodes());
  const double m = graph.num_edges();
  if (m == 0) return 0.0;

  int k = 0;
  for (int c : assignment) k = std::max(k, c + 1);
  // Q = sum_c [ e_c / m - (d_c / 2m)^2 ], with e_c intra-community edges and
  // d_c the total degree of community c.
  std::vector<double> intra(k, 0.0), degree(k, 0.0);
  for (const Edge& e : graph.edges()) {
    if (assignment[e.u] == assignment[e.v]) intra[assignment[e.u]] += 1.0;
  }
  for (int i = 0; i < graph.num_nodes(); ++i)
    degree[assignment[i]] += graph.Degree(i);

  double q = 0.0;
  for (int c = 0; c < k; ++c) {
    const double frac = degree[c] / (2.0 * m);
    q += intra[c] / m - frac * frac;
  }
  return q;
}

double GeneralizedModularity(const SparseMatrix& proximity, const Matrix& p) {
  ANECI_CHECK_EQ(proximity.rows(), p.rows());
  const double two_m = proximity.SumAll();
  if (two_m <= 0.0) return 0.0;

  // Observed term: sum(P (.) A~ P).
  Matrix ap = proximity.Multiply(p);
  double observed = 0.0;
  for (int64_t i = 0; i < ap.size(); ++i)
    observed += ap.data()[i] * p.data()[i];

  // Null-model term: ||P^T k~||^2 / (2 M~), with k~ the generalised degrees.
  const std::vector<double> k = proximity.RowSumsVec();
  std::vector<double> v(p.cols(), 0.0);
  for (int r = 0; r < p.rows(); ++r) {
    const double* row = p.RowPtr(r);
    for (int c = 0; c < p.cols(); ++c) v[c] += k[r] * row[c];
  }
  double null_model = 0.0;
  for (double x : v) null_model += x * x;
  null_model /= two_m;

  return (observed - null_model) / two_m;
}

double Rigidity(const Matrix& p) {
  ANECI_CHECK_GT(p.rows(), 0);
  // tr(P^T P) = sum of squares of all entries.
  double s = 0.0;
  for (int64_t i = 0; i < p.size(); ++i) s += p.data()[i] * p.data()[i];
  return s / p.rows();
}

std::vector<int> ArgmaxAssignment(const Matrix& p) {
  std::vector<int> assignment(p.rows(), 0);
  for (int r = 0; r < p.rows(); ++r) {
    const double* row = p.RowPtr(r);
    int best = 0;
    for (int c = 1; c < p.cols(); ++c)
      if (row[c] > row[best]) best = c;
    assignment[r] = best;
  }
  return assignment;
}

}  // namespace aneci

#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace aneci {

Graph Graph::FromEdges(int num_nodes, const std::vector<Edge>& edges) {
  Graph g(num_nodes);
  std::vector<Edge> normalized;
  normalized.reserve(edges.size());
  for (Edge e : edges) {
    ANECI_CHECK(e.u >= 0 && e.u < num_nodes && e.v >= 0 && e.v < num_nodes);
    if (e.u == e.v) continue;
    if (e.u > e.v) std::swap(e.u, e.v);
    normalized.push_back(e);
  }
  std::sort(normalized.begin(), normalized.end());
  normalized.erase(std::unique(normalized.begin(), normalized.end()),
                   normalized.end());
  g.edges_ = std::move(normalized);
  return g;
}

bool Graph::HasEdge(int u, int v) const {
  if (u == v) return false;
  if (u > v) std::swap(u, v);
  return std::binary_search(edges_.begin(), edges_.end(), Edge{u, v});
}

bool Graph::AddEdge(int u, int v) {
  ANECI_CHECK(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
  if (u == v) return false;
  if (u > v) std::swap(u, v);
  const Edge e{u, v};
  auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it != edges_.end() && *it == e) return false;
  edges_.insert(it, e);
  InvalidateAdjacency();
  return true;
}

bool Graph::RemoveEdge(int u, int v) {
  if (u == v) return false;
  if (u > v) std::swap(u, v);
  const Edge e{u, v};
  auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it == edges_.end() || !(*it == e)) return false;
  edges_.erase(it);
  InvalidateAdjacency();
  return true;
}

const std::vector<int>& Graph::Neighbors(int u) const {
  ANECI_CHECK(u >= 0 && u < num_nodes_);
  EnsureAdjacency();
  return neighbors_[u];
}

void Graph::SetAttributes(Matrix x) {
  ANECI_CHECK_EQ(x.rows(), num_nodes_);
  attributes_ = std::move(x);
}

void Graph::SetLabels(std::vector<int> labels) {
  ANECI_CHECK_EQ(static_cast<int>(labels.size()), num_nodes_);
  labels_ = std::move(labels);
}

int Graph::num_classes() const {
  int k = 0;
  for (int y : labels_) k = std::max(k, y + 1);
  return k;
}

SparseMatrix Graph::Adjacency(bool add_self_loops) const {
  std::vector<Triplet> trips;
  trips.reserve(2 * edges_.size() + (add_self_loops ? num_nodes_ : 0));
  for (const Edge& e : edges_) {
    trips.push_back({e.u, e.v, 1.0});
    trips.push_back({e.v, e.u, 1.0});
  }
  if (add_self_loops)
    for (int i = 0; i < num_nodes_; ++i) trips.push_back({i, i, 1.0});
  return SparseMatrix::FromTriplets(num_nodes_, num_nodes_, std::move(trips));
}

SparseMatrix Graph::NormalizedAdjacency() const {
  return Adjacency(/*add_self_loops=*/true).SymmetricallyNormalized();
}

Matrix Graph::FeaturesOrIdentity() const {
  if (has_attributes()) return attributes_;
  return Matrix::Identity(num_nodes_);
}

void Graph::InvalidateAdjacency() { adjacency_valid_ = false; }

void Graph::EnsureAdjacency() const {
  if (adjacency_valid_) return;
  neighbors_.assign(num_nodes_, {});
  for (const Edge& e : edges_) {
    neighbors_[e.u].push_back(e.v);
    neighbors_[e.v].push_back(e.u);
  }
  for (auto& list : neighbors_) std::sort(list.begin(), list.end());
  adjacency_valid_ = true;
}

}  // namespace aneci

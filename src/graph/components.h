// Connected components and basic structural statistics of a graph.
#ifndef ANECI_GRAPH_COMPONENTS_H_
#define ANECI_GRAPH_COMPONENTS_H_

#include <vector>

#include "graph/graph.h"

namespace aneci {

/// Component id per node (0-based, by discovery order) and component count.
struct ComponentsResult {
  std::vector<int> component;
  int num_components = 0;
};

ComponentsResult ConnectedComponents(const Graph& graph);

/// Size of the largest connected component.
int LargestComponentSize(const Graph& graph);

struct DegreeStats {
  double mean = 0.0;
  int min = 0;
  int max = 0;
};

DegreeStats ComputeDegreeStats(const Graph& graph);

}  // namespace aneci

#endif  // ANECI_GRAPH_COMPONENTS_H_

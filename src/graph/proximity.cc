#include "graph/proximity.h"

#include "util/check.h"

namespace aneci {

SparseMatrix HighOrderProximity(const Graph& graph,
                                const ProximityOptions& options) {
  return HighOrderProximityFromAdjacency(
      graph.Adjacency(options.add_self_loops), options);
}

SparseMatrix HighOrderProximityFromAdjacency(const SparseMatrix& adjacency,
                                             const ProximityOptions& options) {
  ANECI_CHECK_GE(options.order, 1);
  ANECI_CHECK(options.weights.empty() ||
              static_cast<int>(options.weights.size()) >= options.order);
  auto weight = [&](int o) {
    return options.weights.empty() ? 1.0 : options.weights[o - 1];
  };

  // The O(order) SpGEMMs below dominate; they (and the final row
  // normalisation) run on the global thread pool with deterministic row
  // chunking, so the proximity matrix is bit-identical for any
  // ANECI_THREADS setting. See docs/parallelism.md.
  SparseMatrix power = adjacency;            // A^o as o advances.
  SparseMatrix accum(adjacency.rows(), adjacency.cols());
  accum = accum.AddScaled(adjacency, weight(1));
  for (int o = 2; o <= options.order; ++o) {
    power = power.MultiplySparse(adjacency, options.drop_tol);
    accum = accum.AddScaled(power, weight(o));
  }
  return accum.RowNormalizedL1();
}

}  // namespace aneci

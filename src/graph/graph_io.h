// Graph serialisation: a simple text format (edge list + optional labels and
// dense/sparse attributes) so real benchmark files (Cora etc.) can be dropped
// in for the synthetic generators.
//
// Format:
//   # aneci-graph v1
//   nodes <N>
//   edges <M>
//   <u> <v>            (M lines)
//   labels             (optional section)
//   <y_0> ... <y_{N-1}>
//   attributes <d>     (optional section; one sparse row per node)
//   <nnz> <col:val>*
#ifndef ANECI_GRAPH_GRAPH_IO_H_
#define ANECI_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/env.h"
#include "util/status.h"

namespace aneci {

/// Serialises the graph and writes it atomically (temp file + rename, via
/// `env`; nullptr means Env::Default()), so an interrupted save never leaves
/// a torn file behind.
Status SaveGraph(const Graph& graph, const std::string& path,
                 Env* env = nullptr);

/// Reads through `env` (nullptr means Env::Default()) so tests can inject
/// fault-injecting environments on the load path too.
StatusOr<Graph> LoadGraph(const std::string& path, Env* env = nullptr);

/// Loads a bare whitespace-separated edge list ("u v" per line, '#' comments).
/// Node count is 1 + max id unless `num_nodes` > 0.
StatusOr<Graph> LoadEdgeList(const std::string& path, int num_nodes = 0,
                             Env* env = nullptr);

}  // namespace aneci

#endif  // ANECI_GRAPH_GRAPH_IO_H_

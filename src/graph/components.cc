#include "graph/components.h"

#include <algorithm>

namespace aneci {

ComponentsResult ConnectedComponents(const Graph& graph) {
  ComponentsResult result;
  result.component.assign(graph.num_nodes(), -1);
  std::vector<int> stack;
  for (int s = 0; s < graph.num_nodes(); ++s) {
    if (result.component[s] != -1) continue;
    const int id = result.num_components++;
    stack.push_back(s);
    result.component[s] = id;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int v : graph.Neighbors(u)) {
        if (result.component[v] == -1) {
          result.component[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return result;
}

int LargestComponentSize(const Graph& graph) {
  ComponentsResult cc = ConnectedComponents(graph);
  if (cc.num_components == 0) return 0;
  std::vector<int> sizes(cc.num_components, 0);
  for (int c : cc.component) ++sizes[c];
  return *std::max_element(sizes.begin(), sizes.end());
}

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  if (graph.num_nodes() == 0) return stats;
  stats.min = graph.Degree(0);
  double total = 0.0;
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const int d = graph.Degree(i);
    total += d;
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
  }
  stats.mean = total / graph.num_nodes();
  return stats;
}

}  // namespace aneci

#include "graph/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "graph/modularity.h"
#include "util/check.h"

namespace aneci {
namespace {

// Weighted graph used across agglomeration levels.
struct WeightedGraph {
  int n = 0;
  // Adjacency as per-node (neighbor, weight) lists; self-loops allowed and
  // represent internal weight of a super-node.
  std::vector<std::vector<std::pair<int, double>>> adj;
  double total_weight = 0.0;  // Sum of edge weights (each edge counted once).
};

WeightedGraph FromGraph(const Graph& g) {
  WeightedGraph wg;
  wg.n = g.num_nodes();
  wg.adj.assign(wg.n, {});
  for (const Edge& e : g.edges()) {
    wg.adj[e.u].push_back({e.v, 1.0});
    wg.adj[e.v].push_back({e.u, 1.0});
    wg.total_weight += 1.0;
  }
  return wg;
}

// One level of local moving; returns community per node of wg.
std::vector<int> LocalMoving(const WeightedGraph& wg, Rng& rng,
                             const LouvainOptions& options) {
  const int n = wg.n;
  const double two_m = 2.0 * wg.total_weight;
  std::vector<int> community(n);
  std::iota(community.begin(), community.end(), 0);

  // Weighted degree per node (self-loops counted twice) and per community.
  std::vector<double> node_degree(n, 0.0);
  for (int u = 0; u < n; ++u)
    for (auto [v, w] : wg.adj[u]) node_degree[u] += (v == u) ? 2.0 * w : w;
  std::vector<double> comm_degree = node_degree;

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (int pass = 0; pass < options.max_passes; ++pass) {
    // Shuffle visit order for tie-breaking diversity.
    for (int i = n - 1; i > 0; --i)
      std::swap(order[i], order[rng.NextInt(i + 1)]);

    double total_gain = 0.0;
    std::unordered_map<int, double> weight_to;
    for (int u : order) {
      weight_to.clear();
      double self_weight = 0.0;
      for (auto [v, w] : wg.adj[u]) {
        if (v == u) {
          self_weight += w;
          continue;
        }
        weight_to[community[v]] += w;
      }
      const int old_c = community[u];
      comm_degree[old_c] -= node_degree[u];

      // Gain of moving u into community c:
      //   dQ = w(u->c)/m - k_u * sum_deg(c) / (2 m^2)   (up to constants).
      double best_gain = 0.0;
      int best_c = old_c;
      const double base = weight_to.count(old_c) ? weight_to[old_c] : 0.0;
      const double base_score =
          base - node_degree[u] * comm_degree[old_c] / two_m;
      for (const auto& [c, w] : weight_to) {
        const double score = w - node_degree[u] * comm_degree[c] / two_m;
        const double gain = score - base_score;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_c = c;
        }
      }
      community[u] = best_c;
      comm_degree[best_c] += node_degree[u];
      total_gain += best_gain;
      (void)self_weight;
    }
    if (total_gain < options.min_gain * std::max(1.0, wg.total_weight)) break;
  }
  return community;
}

// Renumbers communities to 0..k-1; returns k.
int Compact(std::vector<int>& community) {
  std::unordered_map<int, int> remap;
  for (int& c : community) {
    auto [it, inserted] = remap.insert({c, static_cast<int>(remap.size())});
    c = it->second;
  }
  return static_cast<int>(remap.size());
}

WeightedGraph Aggregate(const WeightedGraph& wg,
                        const std::vector<int>& community, int k) {
  WeightedGraph out;
  out.n = k;
  out.adj.assign(k, {});
  out.total_weight = wg.total_weight;
  std::unordered_map<int64_t, double> weights;
  for (int u = 0; u < wg.n; ++u) {
    for (auto [v, w] : wg.adj[u]) {
      if (v < u) continue;  // Count each undirected pair once.
      const int cu = community[u], cv = community[v];
      const int64_t key = static_cast<int64_t>(std::min(cu, cv)) * k +
                          std::max(cu, cv);
      weights[key] += w;
    }
  }
  for (const auto& [key, w] : weights) {
    const int a = static_cast<int>(key / k), b = static_cast<int>(key % k);
    out.adj[a].push_back({b, w});
    if (a != b) out.adj[b].push_back({a, w});
  }
  return out;
}

}  // namespace

LouvainResult Louvain(const Graph& graph, Rng& rng,
                      const LouvainOptions& options) {
  LouvainResult result;
  result.assignment.resize(graph.num_nodes());
  std::iota(result.assignment.begin(), result.assignment.end(), 0);
  if (graph.num_edges() == 0) {
    result.num_communities = graph.num_nodes();
    return result;
  }

  WeightedGraph wg = FromGraph(graph);
  std::vector<int> node_to_comm = result.assignment;  // Original -> current.

  for (int level = 0; level < options.max_levels; ++level) {
    std::vector<int> community = LocalMoving(wg, rng, options);
    const int k = Compact(community);
    for (int i = 0; i < graph.num_nodes(); ++i)
      node_to_comm[i] = community[node_to_comm[i]];
    if (k == wg.n) break;  // No merge happened; converged.
    wg = Aggregate(wg, community, k);
  }

  result.assignment = node_to_comm;
  result.num_communities = Compact(result.assignment);
  result.modularity = Modularity(graph, result.assignment);
  return result;
}

}  // namespace aneci

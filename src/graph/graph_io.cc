#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

namespace aneci {

Status SaveGraph(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "# aneci-graph v1\n";
  out << "nodes " << graph.num_nodes() << "\n";
  out << "edges " << graph.num_edges() << "\n";
  for (const Edge& e : graph.edges()) out << e.u << " " << e.v << "\n";
  if (graph.has_labels()) {
    out << "labels\n";
    for (int i = 0; i < graph.num_nodes(); ++i) {
      if (i) out << " ";
      out << graph.labels()[i];
    }
    out << "\n";
  }
  if (graph.has_attributes()) {
    const Matrix& x = graph.attributes();
    out << "attributes " << x.cols() << "\n";
    for (int r = 0; r < x.rows(); ++r) {
      int nnz = 0;
      for (int c = 0; c < x.cols(); ++c)
        if (x(r, c) != 0.0) ++nnz;
      out << nnz;
      for (int c = 0; c < x.cols(); ++c)
        if (x(r, c) != 0.0) out << " " << c << ":" << x(r, c);
      out << "\n";
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<Graph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::string line;
  if (!std::getline(in, line) || line.rfind("# aneci-graph", 0) != 0)
    return Status::InvalidArgument("missing aneci-graph header in " + path);

  std::string keyword;
  int n = 0, m = 0;
  if (!(in >> keyword >> n) || keyword != "nodes")
    return Status::InvalidArgument("expected 'nodes <N>' in " + path);
  if (!(in >> keyword >> m) || keyword != "edges")
    return Status::InvalidArgument("expected 'edges <M>' in " + path);
  if (n < 0 || m < 0)
    return Status::InvalidArgument("negative counts in " + path);

  std::vector<Edge> edges;
  edges.reserve(m);
  for (int i = 0; i < m; ++i) {
    int u, v;
    if (!(in >> u >> v))
      return Status::InvalidArgument("truncated edge list in " + path);
    if (u < 0 || u >= n || v < 0 || v >= n)
      return Status::OutOfRange("edge endpoint out of range in " + path);
    edges.push_back({u, v});
  }
  Graph graph = Graph::FromEdges(n, edges);

  while (in >> keyword) {
    if (keyword == "labels") {
      std::vector<int> labels(n);
      for (int i = 0; i < n; ++i) {
        if (!(in >> labels[i]))
          return Status::InvalidArgument("truncated labels in " + path);
      }
      graph.SetLabels(std::move(labels));
    } else if (keyword == "attributes") {
      int d = 0;
      if (!(in >> d) || d <= 0)
        return Status::InvalidArgument("bad attribute dim in " + path);
      Matrix x(n, d);
      for (int r = 0; r < n; ++r) {
        int nnz = 0;
        if (!(in >> nnz))
          return Status::InvalidArgument("truncated attributes in " + path);
        for (int j = 0; j < nnz; ++j) {
          std::string cell;
          if (!(in >> cell))
            return Status::InvalidArgument("truncated attribute row in " + path);
          const size_t colon = cell.find(':');
          if (colon == std::string::npos)
            return Status::InvalidArgument("bad attribute cell: " + cell);
          const int c = std::stoi(cell.substr(0, colon));
          const double v = std::stod(cell.substr(colon + 1));
          if (c < 0 || c >= d)
            return Status::OutOfRange("attribute column out of range");
          x(r, c) = v;
        }
      }
      graph.SetAttributes(std::move(x));
    } else {
      return Status::InvalidArgument("unknown section: " + keyword);
    }
  }
  return graph;
}

StatusOr<Graph> LoadEdgeList(const std::string& path, int num_nodes) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::vector<Edge> edges;
  int max_id = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    int u, v;
    if (!(ss >> u >> v))
      return Status::InvalidArgument("bad edge line: " + line);
    if (u < 0 || v < 0) return Status::OutOfRange("negative node id");
    max_id = std::max({max_id, u, v});
    edges.push_back({u, v});
  }
  const int n = num_nodes > 0 ? num_nodes : max_id + 1;
  if (max_id >= n) return Status::OutOfRange("node id exceeds num_nodes");
  return Graph::FromEdges(n, edges);
}

}  // namespace aneci

#include "graph/graph_io.h"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "util/env.h"

namespace aneci {
namespace {

// strtol/strtod wrappers that reject partial parses ("12x"), overflow and
// empty input instead of throwing or silently truncating like stoi/stod.

bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Status SaveGraph(const Graph& graph, const std::string& path, Env* env) {
  if (!env) env = Env::Default();
  std::ostringstream out;
  out << "# aneci-graph v1\n";
  out << "nodes " << graph.num_nodes() << "\n";
  out << "edges " << graph.num_edges() << "\n";
  for (const Edge& e : graph.edges()) out << e.u << " " << e.v << "\n";
  if (graph.has_labels()) {
    out << "labels\n";
    for (int i = 0; i < graph.num_nodes(); ++i) {
      if (i) out << " ";
      out << graph.labels()[i];
    }
    out << "\n";
  }
  if (graph.has_attributes()) {
    const Matrix& x = graph.attributes();
    out << "attributes " << x.cols() << "\n";
    for (int r = 0; r < x.rows(); ++r) {
      int nnz = 0;
      for (int c = 0; c < x.cols(); ++c)
        if (x(r, c) != 0.0) ++nnz;
      out << nnz;
      for (int c = 0; c < x.cols(); ++c)
        if (x(r, c) != 0.0) out << " " << c << ":" << x(r, c);
      out << "\n";
    }
  }
  // Atomic temp-file + rename: an interrupted save never leaves a torn
  // graph file for LoadGraph to half-parse.
  return env->WriteFileAtomic(path, out.str());
}

StatusOr<Graph> LoadGraph(const std::string& path, Env* env) {
  if (!env) env = Env::Default();
  ANECI_ASSIGN_OR_RETURN(std::string bytes, env->ReadFile(path));
  std::istringstream in(std::move(bytes));
  std::string line;
  if (!std::getline(in, line) || line.rfind("# aneci-graph", 0) != 0)
    return Status::InvalidArgument("missing aneci-graph header in " + path);

  std::string keyword;
  int n = 0, m = 0;
  if (!(in >> keyword >> n) || keyword != "nodes")
    return Status::InvalidArgument("expected 'nodes <N>' in " + path);
  if (!(in >> keyword >> m) || keyword != "edges")
    return Status::InvalidArgument("expected 'edges <M>' in " + path);
  if (n < 0 || m < 0)
    return Status::InvalidArgument("negative counts in " + path);

  std::vector<Edge> edges;
  edges.reserve(m);
  for (int i = 0; i < m; ++i) {
    int u, v;
    if (!(in >> u >> v))
      return Status::InvalidArgument(
          "truncated edge list in " + path + ": expected " +
          std::to_string(m) + " edges, failed at edge " + std::to_string(i));
    if (u < 0 || u >= n || v < 0 || v >= n)
      return Status::OutOfRange(
          "edge " + std::to_string(i) + " endpoint (" + std::to_string(u) +
          ", " + std::to_string(v) + ") out of range [0, " +
          std::to_string(n) + ") in " + path);
    edges.push_back({u, v});
  }
  Graph graph = Graph::FromEdges(n, edges);

  bool seen_labels = false, seen_attributes = false;
  while (in >> keyword) {
    if (keyword == "labels") {
      if (seen_labels)
        return Status::InvalidArgument("duplicate labels section in " + path);
      seen_labels = true;
      std::vector<int> labels(n);
      for (int i = 0; i < n; ++i) {
        if (!(in >> labels[i]))
          return Status::InvalidArgument(
              "truncated labels in " + path + ": expected " +
              std::to_string(n) + " labels, failed at label " +
              std::to_string(i));
        if (labels[i] < 0)
          return Status::OutOfRange("negative label " +
                                    std::to_string(labels[i]) + " at node " +
                                    std::to_string(i) + " in " + path);
      }
      graph.SetLabels(std::move(labels));
    } else if (keyword == "attributes") {
      if (seen_attributes)
        return Status::InvalidArgument("duplicate attributes section in " +
                                       path);
      seen_attributes = true;
      int d = 0;
      if (!(in >> d) || d <= 0)
        return Status::InvalidArgument("bad attribute dim in " + path);
      Matrix x(n, d);
      for (int r = 0; r < n; ++r) {
        int nnz = 0;
        if (!(in >> nnz))
          return Status::InvalidArgument(
              "truncated attributes in " + path + ": expected " +
              std::to_string(n) + " rows, failed at row " + std::to_string(r));
        if (nnz < 0 || nnz > d)
          return Status::OutOfRange(
              "attribute row " + std::to_string(r) + " declares " +
              std::to_string(nnz) + " nonzeros, valid range is [0, " +
              std::to_string(d) + "] in " + path);
        for (int j = 0; j < nnz; ++j) {
          std::string cell;
          if (!(in >> cell))
            return Status::InvalidArgument(
                "truncated attribute row " + std::to_string(r) + " in " +
                path);
          const size_t colon = cell.find(':');
          if (colon == std::string::npos)
            return Status::InvalidArgument(
                "bad attribute cell (no col:val separator): '" + cell +
                "' at row " + std::to_string(r) + " in " + path);
          int c = 0;
          double v = 0.0;
          if (!ParseInt(cell.substr(0, colon), &c))
            return Status::InvalidArgument(
                "bad attribute column in cell '" + cell + "' at row " +
                std::to_string(r) + " in " + path);
          if (!ParseDouble(cell.substr(colon + 1), &v))
            return Status::InvalidArgument(
                "bad attribute value in cell '" + cell + "' at row " +
                std::to_string(r) + " in " + path);
          if (c < 0 || c >= d)
            return Status::OutOfRange(
                "attribute column " + std::to_string(c) + " out of range [0, " +
                std::to_string(d) + ") at row " + std::to_string(r) + " in " +
                path);
          x(r, c) = v;
        }
      }
      graph.SetAttributes(std::move(x));
    } else {
      return Status::InvalidArgument("unknown section or trailing garbage: '" +
                                     keyword + "' in " + path);
    }
  }
  return graph;
}

StatusOr<Graph> LoadEdgeList(const std::string& path, int num_nodes,
                             Env* env) {
  if (!env) env = Env::Default();
  ANECI_ASSIGN_OR_RETURN(std::string bytes, env->ReadFile(path));
  std::istringstream in(std::move(bytes));
  std::vector<Edge> edges;
  int max_id = -1;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    int u, v;
    if (!(ss >> u >> v))
      return Status::InvalidArgument("bad edge line " +
                                     std::to_string(line_no) + ": '" + line +
                                     "' in " + path);
    std::string trailing;
    if (ss >> trailing)
      return Status::InvalidArgument(
          "trailing garbage '" + trailing + "' on edge line " +
          std::to_string(line_no) + " in " + path);
    if (u < 0 || v < 0)
      return Status::OutOfRange("negative node id on line " +
                                std::to_string(line_no) + " in " + path);
    max_id = std::max({max_id, u, v});
    edges.push_back({u, v});
  }
  const int n = num_nodes > 0 ? num_nodes : max_id + 1;
  if (max_id >= n)
    return Status::OutOfRange("node id " + std::to_string(max_id) +
                              " exceeds num_nodes " + std::to_string(n) +
                              " in " + path);
  return Graph::FromEdges(n, edges);
}

}  // namespace aneci

// Modularity functions: the classic Newman-Girvan Q over a hard partition
// (Eq. 4, the paper's community-detection metric) and the generalised Q~ of
// Eq. 13/14 over high-order proximity and soft (overlapping) memberships.
#ifndef ANECI_GRAPH_MODULARITY_H_
#define ANECI_GRAPH_MODULARITY_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace aneci {

/// Classic modularity Q of a hard partition (Eq. 4) using first-order
/// adjacency without self-loops. `assignment[i]` is node i's community.
double Modularity(const Graph& graph, const std::vector<int>& assignment);

/// Generalised modularity Q~ (Eq. 13):
///   Q~ = 1/(2 M~) * [ sum(P (.) A~ P) - ||P^T k~||^2 / (2 M~) ]
/// where k~ = row sums of A~ and M~ = sum(A~) / 2. Accepts any non-negative
/// proximity matrix and any row-stochastic membership matrix P.
double GeneralizedModularity(const SparseMatrix& proximity, const Matrix& p);

/// Rigidity index of Section VI-E: tr(P^T P) / N in [1/K, 1]; 1 iff P is a
/// hard partition.
double Rigidity(const Matrix& p);

/// Hard assignment from soft membership: argmax per row.
std::vector<int> ArgmaxAssignment(const Matrix& p);

}  // namespace aneci

#endif  // ANECI_GRAPH_MODULARITY_H_

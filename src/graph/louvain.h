// Greedy modularity maximisation (Louvain-style, single-level local moving +
// agglomeration). Serves as the non-embedding community-detection baseline in
// the Fig. 7 reproduction (stand-in for vGraph/ComE's discrete stage).
#ifndef ANECI_GRAPH_LOUVAIN_H_
#define ANECI_GRAPH_LOUVAIN_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace aneci {

struct LouvainOptions {
  int max_passes = 10;        ///< Local-moving sweeps per level.
  int max_levels = 10;        ///< Agglomeration rounds.
  double min_gain = 1e-7;     ///< Stop a pass when total gain drops below.
};

struct LouvainResult {
  std::vector<int> assignment;  ///< Final community per original node.
  double modularity = 0.0;
  int num_communities = 0;
};

LouvainResult Louvain(const Graph& graph, Rng& rng,
                      const LouvainOptions& options = {});

}  // namespace aneci

#endif  // ANECI_GRAPH_LOUVAIN_H_

// Attributed network container (Definition 1): undirected simple graph with
// optional per-node attribute vectors and class labels, stored as a sorted
// edge set plus derived CSR adjacency.
#ifndef ANECI_GRAPH_GRAPH_H_
#define ANECI_GRAPH_GRAPH_H_

#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace aneci {

/// Undirected edge, stored with u <= v.
struct Edge {
  int u;
  int v;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// An attributed network G = (V, E, X) with optional labels y.
/// Self-loops are not stored as edges; adjacency builders add them on demand
/// (Definition 2 adds self-connections for the GCN propagation).
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes) : num_nodes_(num_nodes) {}

  /// Builds from an edge list; duplicates and self-loops are dropped.
  static Graph FromEdges(int num_nodes, const std::vector<Edge>& edges);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const std::vector<Edge>& edges() const { return edges_; }

  bool HasEdge(int u, int v) const;

  /// Adds edge (u, v) if absent; returns true if added.
  bool AddEdge(int u, int v);

  /// Removes edge (u, v) if present; returns true if removed.
  bool RemoveEdge(int u, int v);

  /// Neighbors of u (sorted).
  const std::vector<int>& Neighbors(int u) const;

  int Degree(int u) const { return static_cast<int>(Neighbors(u).size()); }

  // --- Attributes & labels --------------------------------------------------

  bool has_attributes() const { return !attributes_.empty(); }
  const Matrix& attributes() const { return attributes_; }
  Matrix& mutable_attributes() { return attributes_; }
  void SetAttributes(Matrix x);

  /// Attribute dimensionality d, or 0 if absent.
  int attribute_dim() const { return attributes_.cols(); }

  bool has_labels() const { return !labels_.empty(); }
  const std::vector<int>& labels() const { return labels_; }
  void SetLabels(std::vector<int> labels);
  int num_classes() const;

  // --- Matrix views ----------------------------------------------------------

  /// Adjacency A (0/1, symmetric), optionally with unit self-loops.
  SparseMatrix Adjacency(bool add_self_loops = false) const;

  /// GCN propagation operator D^{-1/2} (A + I) D^{-1/2} (Eq. 2).
  SparseMatrix NormalizedAdjacency() const;

  /// Attribute matrix if present, otherwise the identity (the paper's
  /// convention for Polblogs: "use the unit matrix instead").
  Matrix FeaturesOrIdentity() const;

 private:
  void InvalidateAdjacency();
  void EnsureAdjacency() const;

  int num_nodes_ = 0;
  std::vector<Edge> edges_;  // Sorted, unique, u < v.
  Matrix attributes_;
  std::vector<int> labels_;

  // Neighbor lists derived lazily from edges_.
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::vector<int>> neighbors_;
};

}  // namespace aneci

#endif  // ANECI_GRAPH_GRAPH_H_

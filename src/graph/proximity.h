// High-order proximity (Definition 3):
//   A~ = f(w_1 A + w_2 A^2 + ... + w_l A^l)
// with f = row-wise L1 normalisation, A including self-loops, and the powers
// computed sparsely. A~_ij in [0, 1] is interpreted as the probability that
// node i is connected to node j in the high-order space.
#ifndef ANECI_GRAPH_PROXIMITY_H_
#define ANECI_GRAPH_PROXIMITY_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/sparse.h"

namespace aneci {

struct ProximityOptions {
  /// Order l. 1 reduces to the (self-looped, row-normalised) adjacency.
  int order = 2;
  /// Per-order weights w; empty means w_o = 1 for all orders.
  std::vector<double> weights;
  /// Entries of each power with value below this (relative to the row max of
  /// the accumulated matrix) are dropped to bound fill-in on large graphs.
  /// 0 keeps everything.
  double drop_tol = 0.0;
  /// Include self-loops in A before taking powers (the paper's Definition 2
  /// convention). Keeping them makes A^l include all paths of length <= l.
  bool add_self_loops = true;
};

/// Builds the row-normalised high-order proximity matrix A~ of `graph`.
SparseMatrix HighOrderProximity(const Graph& graph,
                                const ProximityOptions& options = {});

/// Same, starting from an explicit adjacency (used after attacks, when the
/// perturbed adjacency is already materialised).
SparseMatrix HighOrderProximityFromAdjacency(const SparseMatrix& adjacency,
                                             const ProximityOptions& options);

}  // namespace aneci

#endif  // ANECI_GRAPH_PROXIMITY_H_

// GraphSAGE-style sampled-neighbourhood propagation (Hamilton et al. 2017),
// the scalability route the paper's conclusion names as future work
// ("improve the scalability on the larger dataset by sampling and learning
// aggregation function instead of full graph Laplacian propagation").
//
// Instead of the dense propagation operator S = D^{-1/2}(A+I)D^{-1/2}, each
// epoch draws a sparse operator S_hat where every node aggregates at most
// `fanout` sampled neighbours (plus itself), importance-weighted so that
// E[S_hat] equals row-normalised (A + I) exactly. Each epoch touches
// O(N * fanout) edges regardless of degree skew.
#ifndef ANECI_CORE_SAGE_ENCODER_H_
#define ANECI_CORE_SAGE_ENCODER_H_

#include "graph/graph.h"
#include "linalg/sparse.h"
#include "util/rng.h"

namespace aneci {

struct SageSamplerOptions {
  int fanout = 10;  ///< Max sampled neighbours per node per epoch.
  /// Weight of the self connection relative to one neighbour sample.
  double self_weight = 1.0;
};

/// Draws one sampled propagation operator (row-stochastic, N x N).
/// Nodes with degree <= fanout keep all their neighbours (no sampling
/// noise where none is needed).
SparseMatrix SampleSageOperator(const Graph& graph,
                                const SageSamplerOptions& options, Rng& rng);

}  // namespace aneci

#endif  // ANECI_CORE_SAGE_ENCODER_H_

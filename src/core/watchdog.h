// Divergence watchdog for the training loop. Each epoch, after the backward
// pass and *before* the optimizer step, the trainer asks the watchdog to
// inspect the loss and the parameter gradients. A non-finite value or a loss
// explosion vetoes the step; the trainer then rolls back to its last good
// in-memory snapshot, decays the learning rate, and retries — up to a
// bounded rollback budget, after which training surfaces a Status instead of
// emitting garbage embeddings. Inspection is read-only, so a healthy run
// with the watchdog enabled is bit-identical to one without it.
#ifndef ANECI_CORE_WATCHDOG_H_
#define ANECI_CORE_WATCHDOG_H_

#include <vector>

#include "autograd/variable.h"
#include "util/status.h"

namespace aneci {

struct WatchdogOptions {
  bool enabled = true;
  /// An epoch is "exploded" when |loss| exceeds this factor times
  /// (1 + smallest |loss| seen so far). Generous by design: it must never
  /// trip on the early-epoch loss swings of a healthy run.
  double explosion_factor = 1e4;
  /// Rollbacks allowed before training gives up with a Status.
  int max_rollbacks = 3;
  /// Learning-rate multiplier applied on every rollback.
  double lr_backoff = 0.5;
  /// Epochs between in-memory snapshots (rollback granularity).
  int snapshot_every = 10;
};

/// Rejects nonsensical policy values (zero/negative explosion factor or
/// snapshot cadence, negative rollback budget, backoff outside (0, 1]) with
/// a message naming the offending knob — the CLI validates operator-supplied
/// flags through this before training starts.
Status ValidateWatchdogOptions(const WatchdogOptions& options);

enum class WatchdogVerdict {
  kHealthy,
  kNonFiniteLoss,
  kNonFiniteGradient,
  kLossExplosion,
};

const char* WatchdogVerdictName(WatchdogVerdict verdict);

class TrainingWatchdog {
 public:
  explicit TrainingWatchdog(const WatchdogOptions& options)
      : options_(options) {}

  /// Inspects one epoch's loss and the gradients currently stored on
  /// `params`. Healthy epochs update the explosion baseline.
  WatchdogVerdict Inspect(double loss, const std::vector<ag::VarPtr>& params);

  /// Accounts one rollback; false when the budget is exhausted.
  bool RecordRollback();

  int rollbacks() const { return rollbacks_; }
  double best_abs_loss() const { return best_abs_loss_; }

  /// Restores accounting state from a checkpoint.
  void Restore(int rollbacks, double best_abs_loss) {
    rollbacks_ = rollbacks;
    best_abs_loss_ = best_abs_loss;
  }

 private:
  WatchdogOptions options_;
  int rollbacks_ = 0;
  double best_abs_loss_ = -1.0;  ///< < 0 until the first healthy epoch.
};

}  // namespace aneci

#endif  // ANECI_CORE_WATCHDOG_H_

#include "core/sage_encoder.h"

#include <algorithm>

#include "util/check.h"

namespace aneci {

SparseMatrix SampleSageOperator(const Graph& graph,
                                const SageSamplerOptions& options, Rng& rng) {
  ANECI_CHECK_GT(options.fanout, 0);
  const int n = graph.num_nodes();
  std::vector<Triplet> trips;
  trips.reserve(static_cast<size_t>(n) * (options.fanout + 1));

  std::vector<int> sample;
  for (int u = 0; u < n; ++u) {
    const std::vector<int>& nbrs = graph.Neighbors(u);
    const double deg = static_cast<double>(nbrs.size());
    const double total = options.self_weight + deg;
    sample.clear();
    double neighbor_weight = 1.0 / total;
    if (static_cast<int>(nbrs.size()) <= options.fanout) {
      sample = nbrs;
    } else {
      // Sample without replacement: partial Fisher-Yates over a copy. Each
      // neighbour appears with probability fanout/deg, so scaling its weight
      // by deg/fanout makes the operator exactly unbiased for the full
      // row-normalised (A + I) while rows still sum to 1.
      std::vector<int> pool = nbrs;
      for (int i = 0; i < options.fanout; ++i) {
        const int j = i + static_cast<int>(rng.NextInt(
                              static_cast<int64_t>(pool.size()) - i));
        std::swap(pool[i], pool[j]);
        sample.push_back(pool[i]);
      }
      neighbor_weight = deg / (options.fanout * total);
    }
    trips.push_back({u, u, options.self_weight / total});
    for (int v : sample) trips.push_back({u, v, neighbor_weight});
  }
  return SparseMatrix::FromTriplets(n, n, std::move(trips));
}

}  // namespace aneci

#include "core/aneci_plus.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace aneci {

std::vector<double> EdgeAnomalyScores(const Graph& graph, const Matrix& z) {
  ANECI_CHECK_EQ(z.rows(), graph.num_nodes());
  std::vector<double> scores;
  scores.reserve(graph.num_edges());
  for (const Edge& e : graph.edges()) {
    scores.push_back(
        1.0 - CosineSimilarity(z.RowPtr(e.u), z.RowPtr(e.v), z.cols()));
  }
  return scores;
}

double AdaptiveDropRatio(const std::vector<double>& edge_scores,
                         const AneciPlusConfig& config) {
  if (config.fixed_drop_ratio >= 0.0) return config.fixed_drop_ratio;
  if (edge_scores.empty()) return 0.0;
  double mean = 0.0;
  for (double s : edge_scores) mean += s;
  mean /= edge_scores.size();
  // Cosine distance lives in [0, 2]; psi's midpoint beta is calibrated for
  // [0, 1], so halve the mean before smoothing.
  const double x = std::clamp(mean / 2.0, 0.0, 1.0);
  return config.psi_gamma /
         (1.0 + std::exp(config.psi_alpha * (config.psi_beta - x)));
}

AneciPlusResult TrainAneciPlus(const Graph& graph,
                               const AneciPlusConfig& config) {
  AneciPlusResult result;

  // Stage 1: embed the (possibly attacked) graph.
  Aneci model(config.base);
  AneciResult stage1 = model.Train(graph);

  // Score and rank edges; drop the top-rho most anomalous.
  const std::vector<double> scores = EdgeAnomalyScores(graph, stage1.z);
  result.drop_ratio = AdaptiveDropRatio(scores, config);
  const int to_drop = static_cast<int>(result.drop_ratio * graph.num_edges());

  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });

  result.denoised_graph = graph;
  for (int i = 0; i < to_drop && i < static_cast<int>(order.size()); ++i) {
    const Edge& e = graph.edges()[order[i]];
    result.denoised_graph.RemoveEdge(e.u, e.v);
    ++result.edges_removed;
  }

  // Stage 2: re-embed with the same configuration (the paper reuses all
  // hyper-parameters across the two phases).
  result.stage2 = model.Train(result.denoised_graph);
  return result;
}

}  // namespace aneci

// AnECI's two training losses:
//  - the generalised modularity Q~ of Eq. 13/14 (maximised), computed in the
//    trace form with a rank-1 null model so the B~ matrix is never densified;
//  - the high-order reconstruction loss L_R of Eq. 17, either exact over all
//    N^2 pairs (streamed, no N^2 storage) or over sampled pairs.
#ifndef ANECI_CORE_LOSSES_H_
#define ANECI_CORE_LOSSES_H_

#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "linalg/sparse.h"
#include "util/rng.h"

namespace aneci {

/// Q~ as a differentiable scalar given soft memberships `p` and the
/// high-order proximity `proximity` (with generalised degrees k~ and total
/// 2M~ derived from it). Maximise this (the trainer negates it).
ag::VarPtr GeneralizedModularityLoss(const SparseMatrix* proximity,
                                     const ag::VarPtr& p);

/// The paper's alternative adapting factor (Section IV-C4 offers
/// "product or minimum"): Q~ with gamma_{i,j,c} = min(p_ic, p_jc) instead of
/// p_ic * p_jc. The null-model term is computed in O(N log N) per community
/// column via sorted prefix sums. Used by the design-choice ablation bench.
ag::VarPtr GeneralizedModularityMinLoss(const SparseMatrix* proximity,
                                        const ag::VarPtr& p);

/// Exact L_R = sum_ij BCE(sigmoid(p_i . p_j), A~_ij), streamed row by row:
/// O(N^2 K) compute, O(N) extra memory. Suitable up to a few thousand nodes.
ag::VarPtr DenseReconstructionLoss(const SparseMatrix* proximity,
                                   const ag::VarPtr& p);

/// Sampled L_R: all stored entries of A~ as positives plus
/// `negatives_per_node` uniformly sampled unstored pairs per node as zeros.
/// Unbiased stand-in for the dense loss on large graphs.
/// When `binarize` is true stored entries become target 1.0 (first-order
/// adjacency style, used by the baseline autoencoders); otherwise targets
/// carry the stored proximity values (AnECI's Eq. 17).
std::vector<ag::PairTarget> SampleReconstructionPairs(
    const SparseMatrix& proximity, int negatives_per_node, Rng& rng,
    bool binarize = false);

ag::VarPtr SampledReconstructionLoss(const ag::VarPtr& p,
                                     const std::vector<ag::PairTarget>& pairs);

}  // namespace aneci

#endif  // ANECI_CORE_LOSSES_H_

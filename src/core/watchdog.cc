#include "core/watchdog.h"

#include <cmath>
#include <string>

namespace aneci {

Status ValidateWatchdogOptions(const WatchdogOptions& options) {
  if (options.explosion_factor <= 0.0)
    return Status::InvalidArgument(
        "watchdog explosion factor must be > 0, got " +
        std::to_string(options.explosion_factor));
  if (options.max_rollbacks < 0)
    return Status::InvalidArgument("watchdog max rollbacks must be >= 0, got " +
                                   std::to_string(options.max_rollbacks));
  if (options.lr_backoff <= 0.0 || options.lr_backoff > 1.0)
    return Status::InvalidArgument("watchdog lr backoff must be in (0, 1], got " +
                                   std::to_string(options.lr_backoff));
  if (options.snapshot_every <= 0)
    return Status::InvalidArgument("watchdog snapshot-every must be > 0, got " +
                                   std::to_string(options.snapshot_every));
  return Status::OK();
}

const char* WatchdogVerdictName(WatchdogVerdict verdict) {
  switch (verdict) {
    case WatchdogVerdict::kHealthy:
      return "healthy";
    case WatchdogVerdict::kNonFiniteLoss:
      return "non-finite loss";
    case WatchdogVerdict::kNonFiniteGradient:
      return "non-finite gradient";
    case WatchdogVerdict::kLossExplosion:
      return "loss explosion";
  }
  return "?";
}

WatchdogVerdict TrainingWatchdog::Inspect(
    double loss, const std::vector<ag::VarPtr>& params) {
  if (!options_.enabled) return WatchdogVerdict::kHealthy;
  if (!std::isfinite(loss)) return WatchdogVerdict::kNonFiniteLoss;
  for (const ag::VarPtr& p : params) {
    const Matrix& g = p->grad();
    for (int64_t i = 0; i < g.size(); ++i)
      if (!std::isfinite(g.data()[i]))
        return WatchdogVerdict::kNonFiniteGradient;
  }
  const double abs_loss = std::fabs(loss);
  if (best_abs_loss_ >= 0.0 &&
      abs_loss > options_.explosion_factor * (1.0 + best_abs_loss_))
    return WatchdogVerdict::kLossExplosion;
  if (best_abs_loss_ < 0.0 || abs_loss < best_abs_loss_)
    best_abs_loss_ = abs_loss;
  return WatchdogVerdict::kHealthy;
}

bool TrainingWatchdog::RecordRollback() {
  if (rollbacks_ >= options_.max_rollbacks) return false;
  ++rollbacks_;
  return true;
}

}  // namespace aneci

#include "core/aneci.h"

#include <limits>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "core/losses.h"
#include "graph/modularity.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

AneciResult Aneci::Train(const Graph& graph,
                         const EpochCallback& on_epoch) const {
  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);
  Rng rng(config_.seed);

  // Precompute the constant operators: GCN propagation S, sparse features X,
  // and the high-order proximity A~ (both the training target and the
  // modularity's structural prior).
  const SparseMatrix s_norm = graph.NormalizedAdjacency();
  const Matrix features = graph.FeaturesOrIdentity();
  const SparseMatrix x_sparse = SparseMatrix::FromDense(features);
  const SparseMatrix proximity = HighOrderProximity(graph, config_.proximity);
  const double two_m_scale = proximity.SumAll();

  const bool dense_recon =
      config_.reconstruction == ReconstructionMode::kDense ||
      (config_.reconstruction == ReconstructionMode::kAuto &&
       n <= config_.dense_threshold);

  // Parameters of the two GCN layers (Eq. 2).
  auto w1 = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), config_.hidden_dim, rng));
  auto b1 = ag::MakeParameter(Matrix(1, config_.hidden_dim));
  auto w2 = ag::MakeParameter(
      Matrix::GlorotUniform(config_.hidden_dim, config_.embed_dim, rng));
  auto b2 = ag::MakeParameter(Matrix(1, config_.embed_dim));

  ag::Adam::Options adam;
  adam.lr = config_.lr;
  adam.weight_decay = config_.weight_decay;
  ag::Adam optimizer({w1, b1, w2, b2}, adam);

  auto forward = [&](const SparseMatrix* prop) {
    // H1 = LeakyReLU(S X W1 + b1); Z = S H1 W2 + b2.
    VarPtr xw = ag::SpMM(&x_sparse, w1);
    VarPtr h1 = ag::LeakyRelu(ag::AddRowBroadcast(ag::SpMM(prop, xw), b1),
                              config_.leaky_relu_alpha);
    VarPtr z = ag::AddRowBroadcast(ag::SpMM(prop, ag::MatMul(h1, w2)), b2);
    return z;
  };
  const bool sampled_encoder =
      config_.encoder == EncoderMode::kSampledNeighbors;

  std::vector<ag::PairTarget> pairs;
  if (!dense_recon)
    pairs = SampleReconstructionPairs(proximity, config_.negatives_per_node, rng);

  AneciResult result;
  double best_mod_loss = std::numeric_limits<double>::max();
  int since_best = 0;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (!dense_recon && config_.resample_every > 0 && epoch > 0 &&
        epoch % config_.resample_every == 0) {
      pairs =
          SampleReconstructionPairs(proximity, config_.negatives_per_node, rng);
    }

    optimizer.ZeroGrad();
    // The sampled operator must stay alive through Backward().
    SparseMatrix s_epoch;
    const SparseMatrix* prop = &s_norm;
    if (sampled_encoder) {
      s_epoch = SampleSageOperator(graph, config_.sage, rng);
      prop = &s_epoch;
    }
    VarPtr z = forward(prop);
    VarPtr p = ag::RowSoftmax(z);
    VarPtr q = config_.modularity_variant == ModularityVariant::kProduct
                   ? GeneralizedModularityLoss(&proximity, p)
                   : GeneralizedModularityMinLoss(&proximity, p);
    VarPtr recon = dense_recon ? DenseReconstructionLoss(&proximity, p)
                               : SampledReconstructionLoss(p, pairs);
    // Balance the two objectives at O(N) magnitude each: Q~ carries a
    // 1/(2M~) normalisation that would otherwise make its gradient O(1/N^2)
    // against the pair-summed reconstruction, so the loss uses the
    // un-normalised trace form (2M~ * Q~) and the per-pair mean of L_R
    // scaled back to N.
    const double recon_pairs =
        dense_recon ? static_cast<double>(n) * n
                    : static_cast<double>(pairs.size());
    VarPtr loss =
        ag::Add(ag::Scale(q, -config_.beta1 * two_m_scale),
                ag::Scale(recon, config_.beta2 * n / recon_pairs));
    ag::Backward(loss);
    optimizer.Step();

    AneciEpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss->value()(0, 0);
    stats.modularity = q->value()(0, 0);
    stats.rigidity = Rigidity(p->value());
    result.history.push_back(stats);
    if (on_epoch) on_epoch(stats, z->value(), p->value());

    if (config_.early_stop_patience > 0) {
      const double mod_loss = -stats.modularity;
      if (mod_loss < best_mod_loss - config_.early_stop_min_delta) {
        best_mod_loss = mod_loss;
        since_best = 0;
      } else if (++since_best >= config_.early_stop_patience) {
        break;
      }
    }
  }

  // Final forward pass with trained weights; inference always uses the
  // deterministic full-graph operator.
  VarPtr z = forward(&s_norm);
  result.z = z->value();
  result.p = RowSoftmax(result.z);
  return result;
}

}  // namespace aneci

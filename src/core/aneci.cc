#include "core/aneci.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "attack/dice.h"
#include "attack/random_attack.h"
#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "core/losses.h"
#include "graph/modularity.h"
#include "util/check.h"
#include "util/checkpoint.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace aneci {

using ag::VarPtr;

namespace {

TensorBlob ToBlob(const Matrix& m) {
  TensorBlob b;
  b.rows = m.rows();
  b.cols = m.cols();
  b.data.assign(m.data(), m.data() + m.size());
  return b;
}

Matrix BlobToMatrix(const TensorBlob& b) {
  Matrix m(b.rows, b.cols);
  std::copy(b.data.begin(), b.data.end(), m.data());
  return m;
}

bool BlobShapeMatches(const TensorBlob& b, const Matrix& m) {
  return b.rows == m.rows() && b.cols == m.cols();
}

void HashMix(uint64_t* h, uint64_t v) {
  // FNV-1a over the value's bytes.
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= 1099511628211ULL;
  }
}

void HashMixDouble(uint64_t* h, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  HashMix(h, bits);
}

/// Serial L2 norm over all parameter gradients. Each per-parameter sum runs
/// in the same element order at every thread count, so the value is part of
/// the deterministic telemetry contract.
double GradNorm(const std::vector<ag::VarPtr>& params) {
  double sum = 0.0;
  for (const ag::VarPtr& p : params) {
    const Matrix& g = p->grad();
    for (int64_t i = 0; i < g.size(); ++i) sum += g.data()[i] * g.data()[i];
  }
  return std::sqrt(sum);
}

/// Fingerprint of everything that shapes the training trajectory besides the
/// snapshotted state: structural config plus graph dimensions. Deliberately
/// excludes `epochs` (resuming with a larger budget extends a run) and
/// `seed` (the restored RNG state supersedes it).
uint64_t ResilienceFingerprint(const AneciConfig& cfg, const Graph& graph) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis.
  HashMix(&h, static_cast<uint64_t>(cfg.hidden_dim));
  HashMix(&h, static_cast<uint64_t>(cfg.embed_dim));
  HashMix(&h, static_cast<uint64_t>(cfg.proximity.order));
  HashMix(&h, static_cast<uint64_t>(cfg.proximity.weights.size()));
  for (double w : cfg.proximity.weights) HashMixDouble(&h, w);
  HashMixDouble(&h, cfg.proximity.drop_tol);
  HashMix(&h, cfg.proximity.add_self_loops ? 1 : 0);
  HashMixDouble(&h, cfg.beta1);
  HashMixDouble(&h, cfg.beta2);
  HashMix(&h, static_cast<uint64_t>(cfg.modularity_variant));
  HashMixDouble(&h, cfg.lr);
  HashMixDouble(&h, cfg.weight_decay);
  HashMixDouble(&h, cfg.leaky_relu_alpha);
  HashMix(&h, static_cast<uint64_t>(cfg.encoder));
  HashMix(&h, static_cast<uint64_t>(cfg.reconstruction));
  HashMix(&h, static_cast<uint64_t>(cfg.dense_threshold));
  HashMix(&h, static_cast<uint64_t>(cfg.negatives_per_node));
  HashMix(&h, static_cast<uint64_t>(cfg.resample_every));
  HashMix(&h, static_cast<uint64_t>(cfg.early_stop_patience));
  HashMixDouble(&h, cfg.early_stop_min_delta);
  if (cfg.adversarial.enabled) {
    // Mixed only when enabled so fingerprints of non-adversarial runs stay
    // compatible with their pre-adversarial-training snapshots.
    HashMix(&h, 0xADuLL);
    HashMixDouble(&h, cfg.adversarial.budget);
    HashMix(&h, static_cast<uint64_t>(cfg.adversarial.every));
    HashMix(&h, static_cast<uint64_t>(cfg.adversarial.kind));
    HashMix(&h, cfg.adversarial.seed);
  }
  HashMix(&h, static_cast<uint64_t>(graph.num_nodes()));
  HashMix(&h, static_cast<uint64_t>(graph.num_edges()));
  HashMix(&h, static_cast<uint64_t>(graph.attribute_dim()));
  return h;
}

}  // namespace

StatusOr<AneciResult> Aneci::TrainWithResilience(
    const Graph& graph, const EpochCallback& on_epoch) const {
  TraceSpan train_span("train/aneci");
  static Counter* runs = MetricsRegistry::Global().GetCounter(
      "train/runs", MetricClass::kDeterministic);
  static Counter* epochs_run = MetricsRegistry::Global().GetCounter(
      "train/epochs", MetricClass::kDeterministic);
  static Counter* rollbacks_taken_counter = MetricsRegistry::Global().GetCounter(
      "train/watchdog_rollbacks", MetricClass::kDeterministic);
  static Counter* early_stops = MetricsRegistry::Global().GetCounter(
      "train/early_stops", MetricClass::kDeterministic);
  static Gauge* last_loss = MetricsRegistry::Global().GetGauge(
      "train/last_loss", MetricClass::kDeterministic);
  TelemetryRing* ring = MetricsRegistry::Global().GetRing("train/epochs");
  runs->Increment();

  const int n = graph.num_nodes();
  ANECI_CHECK_GT(n, 0);
  Rng rng(config_.seed);
  const AdversarialTrainingOptions& adv = config_.adversarial;
  // Dedicated perturbation stream: enabling adversarial training must not
  // shift any draw of the main stream, and vice versa.
  Rng adv_rng(adv.seed);
  Env* env = config_.env ? config_.env : Env::Default();

  // Precompute the constant operators: GCN propagation S, sparse features X,
  // and the high-order proximity A~ (both the training target and the
  // modularity's structural prior).
  SparseMatrix s_norm, x_sparse, proximity;
  Matrix features;
  {
    TraceSpan setup_span("setup");  // Path: train/aneci/setup.
    s_norm = graph.NormalizedAdjacency();
    features = graph.FeaturesOrIdentity();
    x_sparse = SparseMatrix::FromDense(features);
    proximity = HighOrderProximity(graph, config_.proximity);
  }
  const double two_m_scale = proximity.SumAll();

  const bool dense_recon =
      config_.reconstruction == ReconstructionMode::kDense ||
      (config_.reconstruction == ReconstructionMode::kAuto &&
       n <= config_.dense_threshold);

  // Parameters of the two GCN layers (Eq. 2).
  auto w1 = ag::MakeParameter(
      Matrix::GlorotUniform(features.cols(), config_.hidden_dim, rng));
  auto b1 = ag::MakeParameter(Matrix(1, config_.hidden_dim));
  auto w2 = ag::MakeParameter(
      Matrix::GlorotUniform(config_.hidden_dim, config_.embed_dim, rng));
  auto b2 = ag::MakeParameter(Matrix(1, config_.embed_dim));
  const std::vector<VarPtr> params = {w1, b1, w2, b2};

  ag::Adam::Options adam;
  adam.lr = config_.lr;
  adam.weight_decay = config_.weight_decay;
  ag::Adam optimizer(params, adam);

  auto forward = [&](const SparseMatrix* prop) {
    // H1 = LeakyReLU(S X W1 + b1); Z = S H1 W2 + b2.
    VarPtr xw = ag::SpMM(&x_sparse, w1);
    VarPtr h1 = ag::LeakyRelu(ag::AddRowBroadcast(ag::SpMM(prop, xw), b1),
                              config_.leaky_relu_alpha);
    VarPtr z = ag::AddRowBroadcast(ag::SpMM(prop, ag::MatMul(h1, w2)), b2);
    return z;
  };
  const bool sampled_encoder =
      config_.encoder == EncoderMode::kSampledNeighbors;

  std::vector<ag::PairTarget> pairs;
  if (!dense_recon)
    pairs = SampleReconstructionPairs(proximity, config_.negatives_per_node, rng);

  AneciResult result;
  double best_mod_loss = std::numeric_limits<double>::max();
  int since_best = 0;

  TrainingWatchdog watchdog(config_.watchdog);
  const uint64_t fingerprint = ResilienceFingerprint(config_, graph);

  // Snapshot of the complete loop state at an epoch boundary (the state seen
  // at the top of epoch `next_epoch`, before any of its RNG draws).
  auto capture = [&](int next_epoch) {
    TrainingCheckpoint c;
    c.config_fingerprint = fingerprint;
    c.next_epoch = next_epoch;
    c.adam_step = optimizer.step();
    c.lr = optimizer.lr();
    c.best_mod_loss = best_mod_loss;
    c.since_best = since_best;
    c.watchdog_rollbacks = watchdog.rollbacks();
    c.watchdog_best_abs_loss = watchdog.best_abs_loss();
    const Rng::State st = rng.state();
    for (int i = 0; i < 4; ++i) c.rng_state[i] = st.s[i];
    c.rng_has_gauss = st.has_gauss ? 1 : 0;
    c.rng_gauss = st.gauss;
    const Rng::State adv_st = adv_rng.state();
    for (int i = 0; i < 4; ++i) c.adv_rng_state[i] = adv_st.s[i];
    c.adv_rng_has_gauss = adv_st.has_gauss ? 1 : 0;
    c.adv_rng_gauss = adv_st.gauss;
    for (const VarPtr& p : params) c.params.push_back(ToBlob(p->value()));
    for (const Matrix& m : optimizer.first_moments())
      c.opt_m.push_back(ToBlob(m));
    for (const Matrix& m : optimizer.second_moments())
      c.opt_v.push_back(ToBlob(m));
    c.pairs.reserve(pairs.size());
    for (const ag::PairTarget& p : pairs)
      c.pairs.push_back({p.u, p.v, p.target});
    c.history = result.history;
    return c;
  };

  auto restore = [&](const TrainingCheckpoint& c) -> Status {
    if (c.config_fingerprint != fingerprint)
      return Status::FailedPrecondition(
          "checkpoint fingerprint mismatch: snapshot was written by a "
          "different configuration or graph");
    if (c.params.size() != params.size() ||
        c.opt_m.size() != params.size() || c.opt_v.size() != params.size())
      return Status::FailedPrecondition(
          "checkpoint parameter count mismatch");
    for (size_t k = 0; k < params.size(); ++k) {
      if (!BlobShapeMatches(c.params[k], params[k]->value()) ||
          !BlobShapeMatches(c.opt_m[k], params[k]->value()) ||
          !BlobShapeMatches(c.opt_v[k], params[k]->value()))
        return Status::FailedPrecondition(
            "checkpoint tensor shape mismatch at parameter " +
            std::to_string(k));
    }
    std::vector<Matrix> m, v;
    for (size_t k = 0; k < params.size(); ++k) {
      params[k]->mutable_value() = BlobToMatrix(c.params[k]);
      m.push_back(BlobToMatrix(c.opt_m[k]));
      v.push_back(BlobToMatrix(c.opt_v[k]));
    }
    optimizer.SetMoments(std::move(m), std::move(v));
    optimizer.set_step(c.adam_step);
    optimizer.set_lr(c.lr);
    best_mod_loss = c.best_mod_loss;
    since_best = c.since_best;
    watchdog.Restore(c.watchdog_rollbacks, c.watchdog_best_abs_loss);
    Rng::State st;
    for (int i = 0; i < 4; ++i) st.s[i] = c.rng_state[i];
    st.has_gauss = c.rng_has_gauss != 0;
    st.gauss = c.rng_gauss;
    rng.set_state(st);
    Rng::State adv_st;
    for (int i = 0; i < 4; ++i) adv_st.s[i] = c.adv_rng_state[i];
    adv_st.has_gauss = c.adv_rng_has_gauss != 0;
    adv_st.gauss = c.adv_rng_gauss;
    adv_rng.set_state(adv_st);
    pairs.clear();
    pairs.reserve(c.pairs.size());
    for (const PairBlob& p : c.pairs) pairs.push_back({p.u, p.v, p.target});
    result.history = c.history;
    return Status::OK();
  };

  int epoch = 0;
  if (!config_.resume_from.empty()) {
    StatusOr<TrainingCheckpoint> c =
        LoadLatestCheckpoint(config_.resume_from, env);
    if (c.ok()) {
      ANECI_RETURN_IF_ERROR(restore(c.value()));
      epoch = c.value().next_epoch;
      result.resumed_from_epoch = epoch;
      ring->Append("{\"type\":\"event\",\"class\":\"det\",\"name\":"
                   "\"checkpoint_resume\",\"epoch\":" +
                   std::to_string(epoch) + "}");
    } else if (c.status().code() != StatusCode::kNotFound) {
      // Corrupt beyond the .bak fallback — surface it rather than silently
      // retraining from scratch.
      return c.status();
    }
  }

  TrainingCheckpoint last_good;  // In-memory rollback target.
  bool have_snapshot = false;
  int last_snapshot_epoch = 0;

  while (epoch < config_.epochs) {
    // Watchdog snapshot at the epoch boundary, before this epoch's RNG
    // draws, so a rollback replays the exact same trajectory modulo the
    // decayed learning rate.
    if (config_.watchdog.enabled &&
        (!have_snapshot ||
         epoch - last_snapshot_epoch >= config_.watchdog.snapshot_every)) {
      last_good = capture(epoch);
      have_snapshot = true;
      last_snapshot_epoch = epoch;
    }

    if (!dense_recon && config_.resample_every > 0 && epoch > 0 &&
        epoch % config_.resample_every == 0) {
      pairs =
          SampleReconstructionPairs(proximity, config_.negatives_per_node, rng);
    }

    // Adversarial inner step: rebuild the proximity target from a budgeted
    // edge-flip perturbation drawn from the dedicated stream. The encoder
    // still propagates over the clean operator S — only the supervision
    // target moves — so the model learns memberships that survive the
    // perturbation family. All quantities are pure functions of the
    // adv_rng state captured at the epoch boundary, which makes the step
    // both watchdog-rollback-safe and checkpoint-resumable.
    const bool adv_epoch =
        adv.enabled && (adv.every <= 1 || epoch % adv.every == 0);
    SparseMatrix adv_proximity;
    const SparseMatrix* target = &proximity;
    double target_scale = two_m_scale;
    std::vector<ag::PairTarget> adv_pairs;
    const std::vector<ag::PairTarget>* epoch_pairs = &pairs;
    if (adv_epoch) {
      const int flips = static_cast<int>(
          std::lround(adv.budget * graph.num_edges()));
      Graph perturbed;
      if (adv.kind == AdversarialTrainingOptions::Kind::kDice &&
          graph.has_labels()) {
        DiceOptions dice;
        dice.budget = adv.budget;
        perturbed = DiceAttack(graph, dice, adv_rng).attacked;
      } else {
        perturbed = BudgetedEdgeFlips(graph, flips, adv_rng);
      }
      adv_proximity = HighOrderProximity(perturbed, config_.proximity);
      target = &adv_proximity;
      target_scale = adv_proximity.SumAll();
      if (!dense_recon) {
        adv_pairs = SampleReconstructionPairs(
            adv_proximity, config_.negatives_per_node, adv_rng);
        epoch_pairs = &adv_pairs;
      }
    }

    optimizer.ZeroGrad();
    // The sampled operator must stay alive through Backward().
    SparseMatrix s_epoch;
    const SparseMatrix* prop = &s_norm;
    if (sampled_encoder) {
      s_epoch = SampleSageOperator(graph, config_.sage, rng);
      prop = &s_epoch;
    }
    VarPtr z = forward(prop);
    VarPtr p = ag::RowSoftmax(z);
    VarPtr q = config_.modularity_variant == ModularityVariant::kProduct
                   ? GeneralizedModularityLoss(target, p)
                   : GeneralizedModularityMinLoss(target, p);
    VarPtr recon = dense_recon ? DenseReconstructionLoss(target, p)
                               : SampledReconstructionLoss(p, *epoch_pairs);
    // Balance the two objectives at O(N) magnitude each: Q~ carries a
    // 1/(2M~) normalisation that would otherwise make its gradient O(1/N^2)
    // against the pair-summed reconstruction, so the loss uses the
    // un-normalised trace form (2M~ * Q~) and the per-pair mean of L_R
    // scaled back to N.
    const double recon_pairs =
        dense_recon ? static_cast<double>(n) * n
                    : static_cast<double>(epoch_pairs->size());
    VarPtr loss =
        ag::Add(ag::Scale(q, -config_.beta1 * target_scale),
                ag::Scale(recon, config_.beta2 * n / recon_pairs));
    ag::Backward(loss);

    double loss_value = loss->value()(0, 0);
    if (config_.divergence_fault_hook && config_.divergence_fault_hook(epoch))
      loss_value = std::numeric_limits<double>::quiet_NaN();

    const WatchdogVerdict verdict = watchdog.Inspect(loss_value, params);
    if (verdict != WatchdogVerdict::kHealthy) {
      if (!have_snapshot || !watchdog.RecordRollback())
        return Status::Internal(
            std::string("training diverged (") + WatchdogVerdictName(verdict) +
            " at epoch " + std::to_string(epoch) + ") after " +
            std::to_string(watchdog.rollbacks()) +
            " rollback(s); lr reached " + std::to_string(optimizer.lr()));
      // Roll back to the last good boundary and retry with a decayed
      // learning rate. The restore would also rewind the rollback
      // accounting, so it is re-applied afterwards.
      const int rollbacks_taken = watchdog.rollbacks();
      ANECI_RETURN_IF_ERROR(restore(last_good));
      watchdog.Restore(rollbacks_taken, watchdog.best_abs_loss());
      const double decayed_lr = optimizer.lr() * config_.watchdog.lr_backoff;
      optimizer.set_lr(decayed_lr);
      last_good.lr = decayed_lr;
      last_good.watchdog_rollbacks = rollbacks_taken;
      rollbacks_taken_counter->Increment();
      ring->Append("{\"type\":\"event\",\"class\":\"det\",\"name\":"
                   "\"watchdog_rollback\",\"epoch\":" + std::to_string(epoch) +
                   ",\"verdict\":\"" + WatchdogVerdictName(verdict) +
                   "\",\"resumed_epoch\":" +
                   std::to_string(last_good.next_epoch) +
                   ",\"lr\":" + JsonDouble(decayed_lr) + "}");
      epoch = last_good.next_epoch;
      continue;
    }

    optimizer.Step();

    AneciEpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss_value;
    stats.modularity = q->value()(0, 0);
    stats.rigidity = Rigidity(p->value());
    result.history.push_back(stats);
    epochs_run->Increment();
    last_loss->Set(loss_value);
    ring->Append("{\"type\":\"epoch\",\"class\":\"det\",\"epoch\":" +
                 std::to_string(epoch) +
                 ",\"loss\":" + JsonDouble(loss_value) +
                 ",\"modularity\":" + JsonDouble(stats.modularity) +
                 ",\"rigidity\":" + JsonDouble(stats.rigidity) +
                 ",\"grad_norm\":" + JsonDouble(GradNorm(params)) +
                 ",\"lr\":" + JsonDouble(optimizer.lr()) + "}");
    if (on_epoch) on_epoch(stats, z->value(), p->value());

    bool stop_early = false;
    if (config_.early_stop_patience > 0) {
      const double mod_loss = -stats.modularity;
      if (mod_loss < best_mod_loss - config_.early_stop_min_delta) {
        best_mod_loss = mod_loss;
        since_best = 0;
      } else if (++since_best >= config_.early_stop_patience) {
        stop_early = true;
      }
    }

    ++epoch;

    if (!config_.checkpoint_dir.empty() && config_.checkpoint_every > 0 &&
        (epoch % config_.checkpoint_every == 0 || epoch == config_.epochs ||
         stop_early)) {
      ANECI_RETURN_IF_ERROR(
          SaveRotatingCheckpoint(capture(epoch), config_.checkpoint_dir, env));
    }

    if (stop_early) {
      early_stops->Increment();
      ring->Append("{\"type\":\"event\",\"class\":\"det\",\"name\":"
                   "\"early_stop\",\"epoch\":" + std::to_string(epoch - 1) +
                   "}");
      break;
    }
  }

  // Final forward pass with trained weights; inference always uses the
  // deterministic full-graph operator.
  TraceSpan final_span("final_forward");  // Path: train/aneci/final_forward.
  VarPtr z = forward(&s_norm);
  result.z = z->value();
  result.p = RowSoftmax(result.z);
  result.watchdog_rollbacks = watchdog.rollbacks();
  result.final_lr = optimizer.lr();
  return result;
}

AneciResult Aneci::Train(const Graph& graph,
                         const EpochCallback& on_epoch) const {
  StatusOr<AneciResult> result = TrainWithResilience(graph, on_epoch);
  ANECI_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

}  // namespace aneci

// AnECI+ (Algorithm 1): the two-stage denoising variant. Stage 1 trains
// AnECI, scores every edge by s(e_ij) = 1 - cos(z_i, z_j), removes the
// top-rho fraction; stage 2 retrains AnECI on the denoised graph. The drop
// ratio rho is derived from the mean edge anomaly score through the paper's
// smoothing function psi(x) = gamma / (1 + exp(alpha (x - beta))).
#ifndef ANECI_CORE_ANECI_PLUS_H_
#define ANECI_CORE_ANECI_PLUS_H_

#include <vector>

#include "core/aneci.h"
#include "graph/graph.h"
#include "linalg/matrix.h"

namespace aneci {

struct AneciPlusConfig {
  AneciConfig base;
  /// Parameters of psi; the paper fixes beta = 0.5, gamma = 0.75 and tunes
  /// alpha per dataset/attack (Section VI-B2).
  double psi_alpha = 3.0;
  double psi_beta = 0.5;
  double psi_gamma = 0.75;
  /// When >= 0, overrides the adaptive rho entirely.
  double fixed_drop_ratio = -1.0;
};

/// Anomaly score per edge of `graph` under embedding `z` (aligned with
/// graph.edges() order): s = 1 - cosine(z_u, z_v).
std::vector<double> EdgeAnomalyScores(const Graph& graph, const Matrix& z);

/// The paper's drop-ratio schedule psi applied to the mean edge score.
double AdaptiveDropRatio(const std::vector<double>& edge_scores,
                         const AneciPlusConfig& config);

struct AneciPlusResult {
  AneciResult stage2;        ///< Final embeddings from the denoised graph.
  Graph denoised_graph;      ///< Graph after edge removal.
  double drop_ratio = 0.0;
  int edges_removed = 0;
};

/// Runs the full two-stage pipeline.
AneciPlusResult TrainAneciPlus(const Graph& graph,
                               const AneciPlusConfig& config);

}  // namespace aneci

#endif  // ANECI_CORE_ANECI_PLUS_H_

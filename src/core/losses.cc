#include "core/losses.h"

#include <cmath>
#include <utility>

#include "autograd/memory_planner.h"
#include "util/check.h"

namespace aneci {

using ag::VarPtr;

VarPtr GeneralizedModularityLoss(const SparseMatrix* proximity,
                                 const ag::VarPtr& p) {
  ANECI_CHECK(proximity != nullptr);
  ANECI_CHECK_EQ(proximity->rows(), p->value().rows());
  const double two_m = proximity->SumAll();
  ANECI_CHECK_GT(two_m, 0.0);
  const std::vector<double> degrees = proximity->RowSumsVec();

  // Q~ = [ sum(P (.) A~P) - ||P^T k~||^2 / (2M~) ] / (2M~).
  VarPtr observed = ag::TraceQuadraticSparse(proximity, p);
  VarPtr null_model = ag::RowWeightedColSumSquares(p, degrees);
  return ag::Scale(
      ag::Sub(observed, ag::Scale(null_model, 1.0 / two_m)), 1.0 / two_m);
}

ag::VarPtr GeneralizedModularityMinLoss(const SparseMatrix* proximity,
                                        const ag::VarPtr& p) {
  ANECI_CHECK(proximity != nullptr);
  const Matrix& pm = p->value();
  const int n = pm.rows(), k = pm.cols();
  ANECI_CHECK_EQ(proximity->rows(), n);
  const double two_m = proximity->SumAll();
  ANECI_CHECK_GT(two_m, 0.0);
  const std::vector<double> deg = proximity->RowSumsVec();

  // Computes value and gradient together; the closure re-derives the
  // gradient from the stored primal (both passes are cheap).
  auto compute = [proximity, two_m, deg](const Matrix& pm, Matrix* grad) {
    const int n = pm.rows(), k = pm.cols();
    double observed = 0.0;
    // Observed term: sum over stored entries of A~ of sum_c min(P_ic, P_jc).
    for (int i = 0; i < n; ++i) {
      for (int64_t e = proximity->row_ptr()[i]; e < proximity->row_ptr()[i + 1];
           ++e) {
        const int j = proximity->col_idx()[e];
        const double a = proximity->values()[e];
        const double* pi = pm.RowPtr(i);
        const double* pj = pm.RowPtr(j);
        for (int c = 0; c < k; ++c) {
          observed += a * std::min(pi[c], pj[c]);
          if (grad != nullptr) {
            if (pi[c] < pj[c]) {
              (*grad)(i, c) += a;
            } else if (pj[c] < pi[c]) {
              (*grad)(j, c) += a;
            } else {
              (*grad)(i, c) += 0.5 * a;
              (*grad)(j, c) += 0.5 * a;
            }
          }
        }
      }
    }
    // Null model: sum_c sum_ij k_i k_j min(v_i, v_j) with v = P[:, c].
    // Sorting v ascending: the pair (i, j) contributes v of the earlier
    // index, so node at sorted position t contributes
    // v_t * k_t * (k_t + 2 * sum_{s > t} k_s).
    double null_model = 0.0;
    std::vector<int> order(n);
    for (int c = 0; c < k; ++c) {
      for (int i = 0; i < n; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return pm(a, c) < pm(b, c);
      });
      double suffix = 0.0;
      for (int i : order) suffix += deg[i];
      for (int t = 0; t < n; ++t) {
        const int i = order[t];
        suffix -= deg[i];
        const double coeff = deg[i] * (deg[i] + 2.0 * suffix);
        null_model += pm(i, c) * coeff;
        if (grad != nullptr) (*grad)(i, c) -= coeff / two_m;
      }
    }
    return (observed - null_model / two_m) / two_m;
  };

  Matrix scalar(1, 1);
  scalar(0, 0) = compute(pm, nullptr);
  auto out =
      std::make_shared<ag::Variable>(std::move(scalar), p->requires_grad());
  if (!p->requires_grad()) return out;
  out->parents = {p};
  out->backward_fn = [p, compute, two_m](ag::Variable& self) {
    Matrix grad = ag::AcquireGradZeroed(p->value().rows(), p->value().cols());
    compute(p->value(), &grad);
    grad *= self.grad()(0, 0) / two_m;
    p->AccumulateGrad(std::move(grad));
  };
  return out;
}

namespace {

double Softplus(double x) { return x > 30.0 ? x : std::log1p(std::exp(x)); }

}  // namespace

VarPtr DenseReconstructionLoss(const SparseMatrix* proximity,
                               const ag::VarPtr& p) {
  ANECI_CHECK(proximity != nullptr);
  const Matrix& pm = p->value();
  const int n = pm.rows(), k = pm.cols();
  ANECI_CHECK_EQ(proximity->rows(), n);
  ANECI_CHECK_EQ(proximity->cols(), n);

  // Forward: stream row i of D = P P^T; targets come from the sparse A~ row.
  double loss = 0.0;
  std::vector<double> drow(n);
  for (int i = 0; i < n; ++i) {
    const double* pi = pm.RowPtr(i);
    for (int j = 0; j < n; ++j) {
      const double* pj = pm.RowPtr(j);
      double d = 0.0;
      for (int c = 0; c < k; ++c) d += pi[c] * pj[c];
      drow[j] = d;
      loss += Softplus(d);  // BCE(sigmoid(d), t) = softplus(d) - t*d.
    }
    for (int64_t e = proximity->row_ptr()[i]; e < proximity->row_ptr()[i + 1];
         ++e) {
      loss -= proximity->values()[e] * drow[proximity->col_idx()[e]];
    }
  }

  Matrix scalar(1, 1);
  scalar(0, 0) = loss;
  auto out = std::make_shared<ag::Variable>(std::move(scalar),
                                            p->requires_grad());
  if (!p->requires_grad()) return out;
  out->parents = {p};
  out->backward_fn = [p, proximity](ag::Variable& self) {
    const double g = self.grad()(0, 0);
    const Matrix& pm = p->value();
    const int n = pm.rows(), k = pm.cols();
    Matrix dp = ag::AcquireGradZeroed(n, k);
    std::vector<double> coeff(n);
    for (int i = 0; i < n; ++i) {
      const double* pi = pm.RowPtr(i);
      // For ordered pair (i, j): dL/dd_ij = sigmoid(d_ij) - t_ij =: coeff_j,
      // and d_ij = p_i . p_j, so dP_i += coeff_j P_j and dP_j += coeff_j P_i.
      for (int j = 0; j < n; ++j) {
        const double* pj = pm.RowPtr(j);
        double d = 0.0;
        for (int c = 0; c < k; ++c) d += pi[c] * pj[c];
        coeff[j] = 1.0 / (1.0 + std::exp(-d));
      }
      for (int64_t e = proximity->row_ptr()[i];
           e < proximity->row_ptr()[i + 1]; ++e) {
        coeff[proximity->col_idx()[e]] -= proximity->values()[e];
      }
      double* di = dp.RowPtr(i);
      for (int j = 0; j < n; ++j) {
        const double w = g * coeff[j];
        if (w == 0.0) continue;
        const double* pj = pm.RowPtr(j);
        double* dj = dp.RowPtr(j);
        for (int c = 0; c < k; ++c) {
          di[c] += w * pj[c];
          dj[c] += w * pi[c];
        }
      }
    }
    p->AccumulateGrad(std::move(dp));
  };
  return out;
}

std::vector<ag::PairTarget> SampleReconstructionPairs(
    const SparseMatrix& proximity, int negatives_per_node, Rng& rng,
    bool binarize) {
  std::vector<ag::PairTarget> pairs;
  const int n = proximity.rows();
  pairs.reserve(proximity.nnz() + static_cast<int64_t>(n) * negatives_per_node);
  for (int i = 0; i < n; ++i) {
    for (int64_t e = proximity.row_ptr()[i]; e < proximity.row_ptr()[i + 1];
         ++e) {
      pairs.push_back({i, proximity.col_idx()[e],
                       binarize ? 1.0 : proximity.values()[e]});
    }
    for (int s = 0; s < negatives_per_node; ++s) {
      const int j = static_cast<int>(rng.NextInt(n));
      if (proximity.At(i, j) != 0.0) continue;  // Keep negatives clean.
      pairs.push_back({i, j, 0.0});
    }
  }
  return pairs;
}

VarPtr SampledReconstructionLoss(const ag::VarPtr& p,
                                 const std::vector<ag::PairTarget>& pairs) {
  return ag::InnerProductPairBce(p, pairs);
}

}  // namespace aneci

// AnECI: Attributed Network Embedding preserving Community Information
// (ICDE 2022). A two-layer GCN encoder produces embeddings Z; softmax(Z)
// gives soft community memberships P; training maximises the generalised
// high-order modularity Q~ (Eq. 13) and minimises the high-order proximity
// reconstruction loss L_R (Eq. 17):
//     min_W  L = -beta1 * Q~ + beta2 * L_R        (Eq. 18)
#ifndef ANECI_CORE_ANECI_H_
#define ANECI_CORE_ANECI_H_

#include <functional>
#include <string>
#include <vector>

#include "core/sage_encoder.h"
#include "core/watchdog.h"
#include "graph/graph.h"
#include "graph/proximity.h"
#include "linalg/matrix.h"
#include "util/checkpoint.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/status.h"

namespace aneci {

enum class ReconstructionMode {
  kAuto,     ///< Dense when N <= dense_threshold, else sampled.
  kDense,    ///< Exact O(N^2 K) loss, streamed.
  kSampled,  ///< Positives = stored A~ entries, plus sampled negatives.
};

enum class EncoderMode {
  /// Full-graph symmetric-normalised propagation (Eq. 2, the paper's model).
  kFullGraph,
  /// GraphSAGE-style sampled-neighbour propagation, the scalability
  /// extension named in the paper's conclusion. Unbiased in expectation.
  kSampledNeighbors,
};

/// Adversarial training (docs/robustness.md §10): on adversarial epochs the
/// proximity target A~ is rebuilt from a budgeted edge-flip perturbation of
/// the graph, so the encoder learns memberships that survive the attack
/// family instead of memorising the clean structure. The perturbation draws
/// from a dedicated RNG stream that is checkpointed alongside the model, so
/// adversarially trained runs resume bit-identically; the perturbation
/// itself flows through the deterministic SpGEMM kernels and is therefore
/// identical at every ANECI_THREADS value.
struct AdversarialTrainingOptions {
  bool enabled = false;
  /// Fraction of |E| flipped per adversarial epoch.
  double budget = 0.05;
  /// Apply the perturbed target every this many epochs (1 = every epoch).
  int every = 1;
  /// Perturbation family: label-agnostic random flips, or the label-aware
  /// DICE heuristic (falls back to random when the graph has no labels).
  enum class Kind { kRandom, kDice };
  Kind kind = Kind::kRandom;
  /// Seed of the dedicated perturbation stream.
  uint64_t seed = 0x5eedULL;
};

/// Choice of the adapting-factor F in the generalised modularity
/// (Section IV-C4 allows "the product or minimum between the corresponding
/// two weights"; the paper's experiments use the product).
enum class ModularityVariant {
  kProduct,
  kMinimum,
};

struct AneciConfig {
  /// Hidden width of the first GCN layer.
  int hidden_dim = 64;
  /// Embedding size h. Acts as the number of latent communities |C| because
  /// P = softmax(Z) (Eq. 3).
  int embed_dim = 16;

  /// High-order proximity options (order l, weights w).
  ProximityOptions proximity;

  double beta1 = 1.0;  ///< Modularity weight.
  double beta2 = 1.0;  ///< Reconstruction weight.
  ModularityVariant modularity_variant = ModularityVariant::kProduct;

  int epochs = 150;
  double lr = 0.01;
  double weight_decay = 0.0;
  double leaky_relu_alpha = 0.01;

  EncoderMode encoder = EncoderMode::kFullGraph;
  /// Sampler parameters for EncoderMode::kSampledNeighbors.
  SageSamplerOptions sage;

  ReconstructionMode reconstruction = ReconstructionMode::kAuto;
  int dense_threshold = 1500;
  int negatives_per_node = 5;
  /// Resample negative pairs every this many epochs (sampled mode).
  int resample_every = 20;

  /// Early stopping on the modularity loss (paper's anomaly-detection
  /// protocol); 0 disables.
  int early_stop_patience = 0;
  /// Minimum modularity-loss improvement that resets the patience counter.
  double early_stop_min_delta = 1e-4;

  uint64_t seed = 42;

  /// Optional adversarial inner step (docs/robustness.md §10).
  AdversarialTrainingOptions adversarial;

  // --- Training resilience (docs/robustness.md) ----------------------------

  /// Directory for periodic on-disk snapshots (util/checkpoint.h); empty
  /// disables checkpointing.
  std::string checkpoint_dir;
  /// Epochs between snapshots when checkpoint_dir is set; a final snapshot
  /// is always written when training finishes.
  int checkpoint_every = 10;
  /// Directory to resume from (usually == checkpoint_dir); empty disables.
  /// A missing checkpoint starts fresh; a corrupt newest snapshot falls back
  /// to the previous rotation slot; a fingerprint mismatch or fully corrupt
  /// directory is an error. A resumed run continues bit-identically with an
  /// uninterrupted one.
  std::string resume_from;
  /// Divergence watchdog policy (NaN/Inf/explosion detection + rollback).
  WatchdogOptions watchdog;
  /// Checkpoint I/O goes through this Env; nullptr means Env::Default().
  /// Tests inject a FaultInjectingEnv here.
  Env* env = nullptr;
  /// Test hook: epochs for which this returns true get their loss forced to
  /// NaN after the backward pass, simulating numerical divergence so the
  /// watchdog's rollback path can be exercised deterministically.
  std::function<bool(int)> divergence_fault_hook;
};

/// Per-epoch training telemetry (drives Fig. 9b): epoch, loss, modularity
/// (Q~) and rigidity (tr(P^T P) / N). Checkpoints store the history
/// verbatim, so this IS the checkpoint blob type rather than a field-for-
/// field mirror of it.
using AneciEpochStats = EpochStatBlob;

/// Result of a training run.
struct AneciResult {
  Matrix z;  ///< Node embeddings (N x h).
  Matrix p;  ///< Soft community memberships, softmax(Z) (N x h).
  std::vector<AneciEpochStats> history;

  // Resilience telemetry.
  int resumed_from_epoch = -1;  ///< Epoch a checkpoint resume started at.
  int watchdog_rollbacks = 0;   ///< Divergence rollbacks taken.
  double final_lr = 0.0;        ///< Learning rate after any backoff.
};

class Aneci {
 public:
  explicit Aneci(const AneciConfig& config) : config_(config) {}

  const AneciConfig& config() const { return config_; }

  /// Per-epoch observer: stats, current embeddings Z and memberships P.
  /// Drives the rigidity analysis (Fig. 9b) and the paper's
  /// validation-based embedding selection for node classification.
  using EpochCallback = std::function<void(const AneciEpochStats&,
                                           const Matrix& z, const Matrix& p)>;

  /// Trains on the graph and returns embeddings. Divergence past the
  /// watchdog's rollback budget and checkpoint corruption are surfaced as a
  /// Status instead of garbage embeddings or a crash.
  StatusOr<AneciResult> TrainWithResilience(
      const Graph& graph, const EpochCallback& on_epoch = nullptr) const;

  /// Convenience wrapper over TrainWithResilience that aborts (with the
  /// status message) on failure — for callers without an error channel.
  AneciResult Train(const Graph& graph,
                    const EpochCallback& on_epoch = nullptr) const;

 private:
  AneciConfig config_;
};

}  // namespace aneci

#endif  // ANECI_CORE_ANECI_H_

#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "autograd/memory_planner.h"
#include "linalg/kernels/kernels.h"
#include "util/check.h"

namespace aneci::ag {
namespace {

// Creates the output node and installs the backward closure if any input
// participates in differentiation.
VarPtr MakeOp(std::vector<VarPtr> parents, Matrix value,
              std::function<void(Variable&)> backward) {
  bool needs_grad = false;
  for (const VarPtr& p : parents) needs_grad = needs_grad || p->requires_grad();
  auto out = std::make_shared<Variable>(std::move(value), needs_grad);
  if (needs_grad) {
    out->parents = std::move(parents);
    out->backward_fn = std::move(backward);
  }
  return out;
}

Matrix Scalar(double v) {
  Matrix m(1, 1);
  m(0, 0) = v;
  return m;
}

}  // namespace

// The GEMM/SpMM backward closures call the kernel backend directly into an
// arena-acquired buffer (beta == 0 fully overwrites, so uninitialised
// storage is fine) instead of going through the allocating free functions.

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  Matrix value = aneci::MatMul(a->value(), b->value());
  return MakeOp({a, b}, std::move(value), [a, b](Variable& self) {
    const kernels::Backend& be = kernels::Active();
    if (a->requires_grad()) {
      Matrix ga = AcquireGradUninit(a->value().rows(), a->value().cols());
      be.Gemm(false, true, 1.0, self.grad(), b->value(), 0.0, &ga);
      a->AccumulateGrad(std::move(ga));
    }
    if (b->requires_grad()) {
      Matrix gb = AcquireGradUninit(b->value().rows(), b->value().cols());
      be.Gemm(true, false, 1.0, a->value(), self.grad(), 0.0, &gb);
      b->AccumulateGrad(std::move(gb));
    }
  });
}

VarPtr MatMulTransB(const VarPtr& a, const VarPtr& b) {
  Matrix value = aneci::MatMulTransB(a->value(), b->value());
  return MakeOp({a, b}, std::move(value), [a, b](Variable& self) {
    const kernels::Backend& be = kernels::Active();
    if (a->requires_grad()) {
      Matrix ga = AcquireGradUninit(a->value().rows(), a->value().cols());
      be.Gemm(false, false, 1.0, self.grad(), b->value(), 0.0, &ga);
      a->AccumulateGrad(std::move(ga));
    }
    if (b->requires_grad()) {
      Matrix gb = AcquireGradUninit(b->value().rows(), b->value().cols());
      be.Gemm(true, false, 1.0, self.grad(), a->value(), 0.0, &gb);
      b->AccumulateGrad(std::move(gb));
    }
  });
}

VarPtr SpMM(const SparseMatrix* s, const VarPtr& x) {
  ANECI_CHECK(s != nullptr);
  Matrix value = s->Multiply(x->value());
  return MakeOp({x}, std::move(value), [s, x](Variable& self) {
    if (x->requires_grad()) {
      Matrix gx = AcquireGradUninit(x->value().rows(), x->value().cols());
      kernels::Active().SpmmT(*s, self.grad(), &gx);
      x->AccumulateGrad(std::move(gx));
    }
  });
}

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  Matrix value = aneci::Add(a->value(), b->value());
  return MakeOp({a, b}, std::move(value), [a, b](Variable& self) {
    if (a->requires_grad()) a->AccumulateGrad(AcquireGradCopy(self.grad()));
    if (b->requires_grad()) b->AccumulateGrad(AcquireGradCopy(self.grad()));
  });
}

VarPtr Sub(const VarPtr& a, const VarPtr& b) {
  Matrix value = aneci::Sub(a->value(), b->value());
  return MakeOp({a, b}, std::move(value), [a, b](Variable& self) {
    if (a->requires_grad()) a->AccumulateGrad(AcquireGradCopy(self.grad()));
    if (b->requires_grad()) {
      Matrix g = AcquireGradCopy(self.grad());
      g *= -1.0;
      b->AccumulateGrad(std::move(g));
    }
  });
}

VarPtr Hadamard(const VarPtr& a, const VarPtr& b) {
  Matrix value = aneci::Hadamard(a->value(), b->value());
  return MakeOp({a, b}, std::move(value), [a, b](Variable& self) {
    if (a->requires_grad()) {
      Matrix g = AcquireGradCopy(self.grad());
      g.HadamardInPlace(b->value());
      a->AccumulateGrad(std::move(g));
    }
    if (b->requires_grad()) {
      Matrix g = AcquireGradCopy(self.grad());
      g.HadamardInPlace(a->value());
      b->AccumulateGrad(std::move(g));
    }
  });
}

VarPtr Scale(const VarPtr& a, double s) {
  Matrix value = aneci::Scale(a->value(), s);
  return MakeOp({a}, std::move(value), [a, s](Variable& self) {
    if (a->requires_grad()) {
      Matrix g = AcquireGradCopy(self.grad());
      g *= s;
      a->AccumulateGrad(std::move(g));
    }
  });
}

VarPtr AddRowBroadcast(const VarPtr& x, const VarPtr& bias) {
  ANECI_CHECK_EQ(bias->value().rows(), 1);
  ANECI_CHECK_EQ(bias->value().cols(), x->value().cols());
  Matrix value = x->value();
  for (int r = 0; r < value.rows(); ++r) {
    double* row = value.RowPtr(r);
    const double* b = bias->value().RowPtr(0);
    for (int c = 0; c < value.cols(); ++c) row[c] += b[c];
  }
  return MakeOp({x, bias}, std::move(value), [x, bias](Variable& self) {
    if (x->requires_grad()) x->AccumulateGrad(AcquireGradCopy(self.grad()));
    if (bias->requires_grad()) {
      Matrix g = AcquireGradZeroed(1, self.grad().cols());
      for (int r = 0; r < self.grad().rows(); ++r) {
        const double* row = self.grad().RowPtr(r);
        for (int c = 0; c < self.grad().cols(); ++c) g(0, c) += row[c];
      }
      bias->AccumulateGrad(std::move(g));
    }
  });
}

namespace {

VarPtr ElementwiseOp(const VarPtr& x, const std::function<double(double)>& f,
                     std::function<Matrix(const Variable&)> grad_from_self) {
  Matrix value = x->value();
  value.Apply(f);
  return MakeOp({x}, std::move(value),
                [x, grad_from_self](Variable& self) {
                  if (x->requires_grad())
                    x->AccumulateGrad(grad_from_self(self));
                });
}

}  // namespace

VarPtr Relu(const VarPtr& x) {
  return ElementwiseOp(
      x, [](double v) { return v > 0.0 ? v : 0.0; },
      [x](const Variable& self) {
        Matrix g = AcquireGradCopy(self.grad());
        for (int64_t i = 0; i < g.size(); ++i)
          if (x->value().data()[i] <= 0.0) g.data()[i] = 0.0;
        return g;
      });
}

VarPtr Exp(const VarPtr& x) {
  Matrix value = x->value();
  value.Apply([](double v) { return std::exp(v); });
  return MakeOp({x}, std::move(value), [x](Variable& self) {
    if (!x->requires_grad()) return;
    Matrix g = AcquireGradCopy(self.grad());
    g.HadamardInPlace(self.value());
    x->AccumulateGrad(std::move(g));
  });
}

VarPtr MeanRows(const VarPtr& x) {
  const int n = x->value().rows(), c = x->value().cols();
  ANECI_CHECK_GT(n, 0);
  Matrix value(1, c);
  for (int r = 0; r < n; ++r) {
    const double* row = x->value().RowPtr(r);
    for (int j = 0; j < c; ++j) value(0, j) += row[j];
  }
  for (int j = 0; j < c; ++j) value(0, j) /= n;
  return MakeOp({x}, std::move(value), [x, n](Variable& self) {
    if (!x->requires_grad()) return;
    Matrix dx = AcquireGradUninit(x->value().rows(), x->value().cols());
    const double* g = self.grad().RowPtr(0);
    for (int r = 0; r < dx.rows(); ++r) {
      double* row = dx.RowPtr(r);
      for (int j = 0; j < dx.cols(); ++j) row[j] = g[j] / n;
    }
    x->AccumulateGrad(std::move(dx));
  });
}

VarPtr LeakyRelu(const VarPtr& x, double alpha) {
  return ElementwiseOp(
      x, [alpha](double v) { return v > 0.0 ? v : alpha * v; },
      [x, alpha](const Variable& self) {
        Matrix g = AcquireGradCopy(self.grad());
        for (int64_t i = 0; i < g.size(); ++i)
          if (x->value().data()[i] <= 0.0) g.data()[i] *= alpha;
        return g;
      });
}

VarPtr Sigmoid(const VarPtr& x) {
  Matrix value = x->value();
  value.Apply([](double v) { return 1.0 / (1.0 + std::exp(-v)); });
  return MakeOp({x}, std::move(value), [x](Variable& self) {
    if (!x->requires_grad()) return;
    Matrix g = AcquireGradCopy(self.grad());
    const double* y = self.value().data();
    for (int64_t i = 0; i < g.size(); ++i) g.data()[i] *= y[i] * (1.0 - y[i]);
    x->AccumulateGrad(std::move(g));
  });
}

VarPtr Tanh(const VarPtr& x) {
  Matrix value = x->value();
  value.Apply([](double v) { return std::tanh(v); });
  return MakeOp({x}, std::move(value), [x](Variable& self) {
    if (!x->requires_grad()) return;
    Matrix g = AcquireGradCopy(self.grad());
    const double* y = self.value().data();
    for (int64_t i = 0; i < g.size(); ++i) g.data()[i] *= 1.0 - y[i] * y[i];
    x->AccumulateGrad(std::move(g));
  });
}

VarPtr Transpose(const VarPtr& x) {
  Matrix value = aneci::Transpose(x->value());
  return MakeOp({x}, std::move(value), [x](Variable& self) {
    if (!x->requires_grad()) return;
    const Matrix& dy = self.grad();
    Matrix g = AcquireGradUninit(x->value().rows(), x->value().cols());
    for (int r = 0; r < g.rows(); ++r)
      for (int c = 0; c < g.cols(); ++c) g(r, c) = dy(c, r);
    x->AccumulateGrad(std::move(g));
  });
}

VarPtr RowSoftmax(const VarPtr& x) {
  Matrix value = aneci::RowSoftmax(x->value());
  return MakeOp({x}, std::move(value), [x](Variable& self) {
    if (!x->requires_grad()) return;
    // dx_row = y (.) (dy - (dy . y)).
    const Matrix& y = self.value();
    const Matrix& dy = self.grad();
    Matrix dx = AcquireGradUninit(y.rows(), y.cols());
    for (int r = 0; r < y.rows(); ++r) {
      const double* yr = y.RowPtr(r);
      const double* dyr = dy.RowPtr(r);
      double dot = 0.0;
      for (int c = 0; c < y.cols(); ++c) dot += dyr[c] * yr[c];
      double* dxr = dx.RowPtr(r);
      for (int c = 0; c < y.cols(); ++c) dxr[c] = yr[c] * (dyr[c] - dot);
    }
    x->AccumulateGrad(std::move(dx));
  });
}

VarPtr SumAll(const VarPtr& x) {
  return MakeOp({x}, Scalar(x->value().Sum()), [x](Variable& self) {
    if (!x->requires_grad()) return;
    Matrix g = AcquireGradUninit(x->value().rows(), x->value().cols());
    g.Fill(self.grad()(0, 0));
    x->AccumulateGrad(std::move(g));
  });
}

VarPtr MeanAll(const VarPtr& x) {
  const double inv = 1.0 / static_cast<double>(x->value().size());
  return MakeOp({x}, Scalar(x->value().Sum() * inv), [x, inv](Variable& self) {
    if (!x->requires_grad()) return;
    Matrix g = AcquireGradUninit(x->value().rows(), x->value().cols());
    g.Fill(self.grad()(0, 0) * inv);
    x->AccumulateGrad(std::move(g));
  });
}

VarPtr SumSquares(const VarPtr& x) {
  double s = 0.0;
  for (int64_t i = 0; i < x->value().size(); ++i) {
    const double v = x->value().data()[i];
    s += v * v;
  }
  return MakeOp({x}, Scalar(s), [x](Variable& self) {
    if (!x->requires_grad()) return;
    Matrix g = AcquireGradCopy(x->value());
    g *= 2.0 * self.grad()(0, 0);
    x->AccumulateGrad(std::move(g));
  });
}

VarPtr BinaryCrossEntropySum(const VarPtr& p, const Matrix& targets,
                             double eps) {
  return WeightedBinaryCrossEntropySum(p, targets, 1.0, eps);
}

VarPtr WeightedBinaryCrossEntropySum(const VarPtr& p, const Matrix& targets,
                                     double pos_weight, double eps) {
  ANECI_CHECK(p->value().rows() == targets.rows() &&
              p->value().cols() == targets.cols());
  const int64_t n = p->value().size();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double pv = std::clamp(p->value().data()[i], eps, 1.0 - eps);
    const double t = targets.data()[i];
    loss -= pos_weight * t * std::log(pv) + (1.0 - t) * std::log(1.0 - pv);
  }
  // The closure must not dangle: copy targets.
  Matrix t_copy = targets;
  return MakeOp({p}, Scalar(loss),
                [p, t_copy = std::move(t_copy), pos_weight, eps](Variable& self) {
                  if (!p->requires_grad()) return;
                  const double g = self.grad()(0, 0);
                  Matrix dp =
                      AcquireGradUninit(p->value().rows(), p->value().cols());
                  for (int64_t i = 0; i < dp.size(); ++i) {
                    const double pv =
                        std::clamp(p->value().data()[i], eps, 1.0 - eps);
                    const double t = t_copy.data()[i];
                    dp.data()[i] =
                        g * (-pos_weight * t / pv + (1.0 - t) / (1.0 - pv));
                  }
                  p->AccumulateGrad(std::move(dp));
                });
}

VarPtr SoftmaxCrossEntropy(const VarPtr& logits, const std::vector<int>& rows,
                           const std::vector<int>& labels) {
  ANECI_CHECK_EQ(rows.size(), labels.size());
  ANECI_CHECK(!rows.empty());
  const Matrix& x = logits->value();
  const int c = x.cols();
  // Forward: mean NLL over the selected rows.
  double loss = 0.0;
  Matrix probs(static_cast<int>(rows.size()), c);
  for (size_t i = 0; i < rows.size(); ++i) {
    const double* in = x.RowPtr(rows[i]);
    double mx = in[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, in[j]);
    double sum = 0.0;
    double* pr = probs.RowPtr(static_cast<int>(i));
    for (int j = 0; j < c; ++j) {
      pr[j] = std::exp(in[j] - mx);
      sum += pr[j];
    }
    for (int j = 0; j < c; ++j) pr[j] /= sum;
    ANECI_CHECK(labels[i] >= 0 && labels[i] < c);
    loss -= std::log(std::max(pr[labels[i]], 1e-12));
  }
  loss /= static_cast<double>(rows.size());
  return MakeOp(
      {logits}, Scalar(loss),
      [logits, rows, labels, probs = std::move(probs)](Variable& self) {
        if (!logits->requires_grad()) return;
        const double g = self.grad()(0, 0) / static_cast<double>(rows.size());
        Matrix dx =
            AcquireGradZeroed(logits->value().rows(), logits->value().cols());
        for (size_t i = 0; i < rows.size(); ++i) {
          const double* pr = probs.RowPtr(static_cast<int>(i));
          double* dr = dx.RowPtr(rows[i]);
          for (int j = 0; j < dx.cols(); ++j) dr[j] += g * pr[j];
          dr[labels[i]] -= g;
        }
        logits->AccumulateGrad(std::move(dx));
      });
}

VarPtr TraceQuadraticSparse(const SparseMatrix* s, const VarPtr& p) {
  ANECI_CHECK(s != nullptr);
  ANECI_CHECK_EQ(s->cols(), p->value().rows());
  Matrix sp = s->Multiply(p->value());
  double f = 0.0;
  for (int64_t i = 0; i < sp.size(); ++i)
    f += sp.data()[i] * p->value().data()[i];
  return MakeOp({p}, Scalar(f), [s, p](Variable& self) {
    if (!p->requires_grad()) return;
    const double g = self.grad()(0, 0);
    // d/dP [sum(P (.) SP)] = (S + S^T) P.
    const kernels::Backend& be = kernels::Active();
    Matrix d = AcquireGradUninit(p->value().rows(), p->value().cols());
    be.Spmm(*s, p->value(), &d);
    Matrix dt = AcquireGradUninit(p->value().rows(), p->value().cols());
    be.SpmmT(*s, p->value(), &dt);
    d += dt;
    ReleaseGrad(std::move(dt));
    d *= g;
    p->AccumulateGrad(std::move(d));
  });
}

VarPtr RowWeightedColSumSquares(const VarPtr& p, const std::vector<double>& k) {
  ANECI_CHECK_EQ(static_cast<int>(k.size()), p->value().rows());
  const int cols = p->value().cols();
  std::vector<double> v(cols, 0.0);  // v = P^T k.
  for (int r = 0; r < p->value().rows(); ++r) {
    const double* row = p->value().RowPtr(r);
    for (int c = 0; c < cols; ++c) v[c] += k[r] * row[c];
  }
  double f = 0.0;
  for (double x : v) f += x * x;
  return MakeOp({p}, Scalar(f), [p, k, v](Variable& self) {
    if (!p->requires_grad()) return;
    const double g = self.grad()(0, 0);
    Matrix d = AcquireGradUninit(p->value().rows(), p->value().cols());
    for (int r = 0; r < d.rows(); ++r) {
      double* row = d.RowPtr(r);
      for (int c = 0; c < d.cols(); ++c) row[c] = g * 2.0 * k[r] * v[c];
    }
    p->AccumulateGrad(std::move(d));
  });
}

VarPtr SelectRows(const VarPtr& x, const std::vector<int>& rows) {
  Matrix value = x->value().SelectRows(rows);
  return MakeOp({x}, std::move(value), [x, rows](Variable& self) {
    if (!x->requires_grad()) return;
    Matrix dx = AcquireGradZeroed(x->value().rows(), x->value().cols());
    for (size_t i = 0; i < rows.size(); ++i) {
      const double* g = self.grad().RowPtr(static_cast<int>(i));
      double* d = dx.RowPtr(rows[i]);
      for (int c = 0; c < dx.cols(); ++c) d[c] += g[c];
    }
    x->AccumulateGrad(std::move(dx));
  });
}

VarPtr GraphAttention(const SparseMatrix* adj, const VarPtr& h,
                      const VarPtr& a_src, const VarPtr& a_dst, double slope) {
  ANECI_CHECK(adj != nullptr);
  const Matrix& hm = h->value();
  const int n = hm.rows(), d = hm.cols();
  ANECI_CHECK_EQ(adj->rows(), n);
  ANECI_CHECK_EQ(adj->cols(), n);
  ANECI_CHECK(a_src->value().rows() == 1 && a_src->value().cols() == d);
  ANECI_CHECK(a_dst->value().rows() == 1 && a_dst->value().cols() == d);

  // Per-node attention projections s_i = a_src . h_i, t_i = a_dst . h_i.
  std::vector<double> s(n, 0.0), t(n, 0.0);
  const double* as = a_src->value().RowPtr(0);
  const double* ad = a_dst->value().RowPtr(0);
  for (int i = 0; i < n; ++i) {
    const double* hi = hm.RowPtr(i);
    for (int c = 0; c < d; ++c) {
      s[i] += as[c] * hi[c];
      t[i] += ad[c] * hi[c];
    }
  }

  // Attention weights per stored edge, row-softmaxed.
  std::vector<double> alpha(adj->nnz(), 0.0);
  Matrix out(n, d);
  for (int i = 0; i < n; ++i) {
    const int64_t begin = adj->row_ptr()[i], end = adj->row_ptr()[i + 1];
    if (begin == end) continue;
    double mx = -1e300;
    for (int64_t e = begin; e < end; ++e) {
      const double raw = s[i] + t[adj->col_idx()[e]];
      alpha[e] = raw > 0.0 ? raw : slope * raw;  // LeakyReLU.
      mx = std::max(mx, alpha[e]);
    }
    double sum = 0.0;
    for (int64_t e = begin; e < end; ++e) {
      alpha[e] = std::exp(alpha[e] - mx);
      sum += alpha[e];
    }
    double* oi = out.RowPtr(i);
    for (int64_t e = begin; e < end; ++e) {
      alpha[e] /= sum;
      const double* hj = hm.RowPtr(adj->col_idx()[e]);
      for (int c = 0; c < d; ++c) oi[c] += alpha[e] * hj[c];
    }
  }

  return MakeOp(
      {h, a_src, a_dst}, std::move(out),
      [adj, h, a_src, a_dst, slope, s = std::move(s), t = std::move(t),
       alpha = std::move(alpha)](Variable& self) {
        const Matrix& hm = h->value();
        const int n = hm.rows(), d = hm.cols();
        const Matrix& dout = self.grad();
        const double* as = a_src->value().RowPtr(0);
        const double* ad = a_dst->value().RowPtr(0);

        Matrix dh = AcquireGradZeroed(n, d);
        std::vector<double> ds(n, 0.0), dt(n, 0.0);

        for (int i = 0; i < n; ++i) {
          const int64_t begin = adj->row_ptr()[i], end = adj->row_ptr()[i + 1];
          if (begin == end) continue;
          const double* gi = dout.RowPtr(i);
          // dalpha_ij = dout_i . h_j ; dh_j += alpha_ij * dout_i.
          double weighted = 0.0;  // sum_k alpha_ik dalpha_ik for the softmax.
          std::vector<double> dalpha(end - begin);
          for (int64_t e = begin; e < end; ++e) {
            const int j = adj->col_idx()[e];
            const double* hj = hm.RowPtr(j);
            double da = 0.0;
            for (int c = 0; c < d; ++c) da += gi[c] * hj[c];
            dalpha[e - begin] = da;
            weighted += alpha[e] * da;
            double* dhj = dh.RowPtr(j);
            for (int c = 0; c < d; ++c) dhj[c] += alpha[e] * gi[c];
          }
          for (int64_t e = begin; e < end; ++e) {
            const int j = adj->col_idx()[e];
            // Softmax jacobian, then the LeakyReLU derivative.
            double de = alpha[e] * (dalpha[e - begin] - weighted);
            const double raw = s[i] + t[j];
            if (raw <= 0.0) de *= slope;
            ds[i] += de;
            dt[j] += de;
          }
        }

        // s_i = a_src . h_i and t_i = a_dst . h_i contributions.
        Matrix da_src = AcquireGradZeroed(1, d);
        Matrix da_dst = AcquireGradZeroed(1, d);
        for (int i = 0; i < n; ++i) {
          const double* hi = hm.RowPtr(i);
          double* dhi = dh.RowPtr(i);
          for (int c = 0; c < d; ++c) {
            dhi[c] += ds[i] * as[c] + dt[i] * ad[c];
            da_src(0, c) += ds[i] * hi[c];
            da_dst(0, c) += dt[i] * hi[c];
          }
        }
        if (h->requires_grad()) h->AccumulateGrad(std::move(dh));
        if (a_src->requires_grad()) a_src->AccumulateGrad(std::move(da_src));
        if (a_dst->requires_grad()) a_dst->AccumulateGrad(std::move(da_dst));
      });
}

VarPtr InnerProductPairBce(const VarPtr& p,
                           const std::vector<PairTarget>& pairs) {
  const Matrix& pm = p->value();
  const int k = pm.cols();
  auto softplus = [](double x) {
    // log(1 + e^x), overflow-safe.
    return x > 30.0 ? x : std::log1p(std::exp(x));
  };
  double loss = 0.0;
  for (const PairTarget& pt : pairs) {
    ANECI_DCHECK(pt.u >= 0 && pt.u < pm.rows());
    ANECI_DCHECK(pt.v >= 0 && pt.v < pm.rows());
    double d = 0.0;
    const double* a = pm.RowPtr(pt.u);
    const double* b = pm.RowPtr(pt.v);
    for (int c = 0; c < k; ++c) d += a[c] * b[c];
    // BCE(sigmoid(d), t) = softplus(d) - t * d.
    loss += softplus(d) - pt.target * d;
  }
  return MakeOp({p}, Scalar(loss), [p, pairs](Variable& self) {
    if (!p->requires_grad()) return;
    const double g = self.grad()(0, 0);
    const Matrix& pm = p->value();
    const int k = pm.cols();
    Matrix dp = AcquireGradZeroed(pm.rows(), pm.cols());
    for (const PairTarget& pt : pairs) {
      double d = 0.0;
      const double* a = pm.RowPtr(pt.u);
      const double* b = pm.RowPtr(pt.v);
      for (int c = 0; c < k; ++c) d += a[c] * b[c];
      const double s = 1.0 / (1.0 + std::exp(-d));
      const double coeff = g * (s - pt.target);
      double* du = dp.RowPtr(pt.u);
      double* dv = dp.RowPtr(pt.v);
      for (int c = 0; c < k; ++c) {
        du[c] += coeff * b[c];
        dv[c] += coeff * a[c];
      }
    }
    p->AccumulateGrad(std::move(dp));
  });
}

}  // namespace aneci::ag

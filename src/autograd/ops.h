// Differentiable operations. Every op returns a new node whose
// requires_grad is the OR of its inputs'; gradient closures skip inputs that
// do not require gradients, so large constant inputs (feature matrices,
// adjacency) never allocate gradient buffers.
#ifndef ANECI_AUTOGRAD_OPS_H_
#define ANECI_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "linalg/sparse.h"

namespace aneci::ag {

/// C = A * B.
VarPtr MatMul(const VarPtr& a, const VarPtr& b);

/// C = A * B^T (used by inner-product decoders: sigmoid(P P^T)).
VarPtr MatMulTransB(const VarPtr& a, const VarPtr& b);

/// Y = S * X where S is a constant sparse matrix (GCN propagation).
/// `s` must outlive the backward pass.
VarPtr SpMM(const SparseMatrix* s, const VarPtr& x);

VarPtr Add(const VarPtr& a, const VarPtr& b);
VarPtr Sub(const VarPtr& a, const VarPtr& b);
VarPtr Hadamard(const VarPtr& a, const VarPtr& b);
VarPtr Scale(const VarPtr& a, double s);

/// Adds a (1 x c) bias row to every row of x (n x c).
VarPtr AddRowBroadcast(const VarPtr& x, const VarPtr& bias);

VarPtr Relu(const VarPtr& x);
VarPtr Exp(const VarPtr& x);
/// Mean over rows -> (1 x c) (DGI's readout).
VarPtr MeanRows(const VarPtr& x);
VarPtr LeakyRelu(const VarPtr& x, double alpha = 0.01);
VarPtr Sigmoid(const VarPtr& x);
VarPtr Tanh(const VarPtr& x);
VarPtr Transpose(const VarPtr& x);

/// Row-wise softmax (Eq. 3: P = softmax(Z)).
VarPtr RowSoftmax(const VarPtr& x);

/// 1x1 node with the sum of all entries.
VarPtr SumAll(const VarPtr& x);

/// 1x1 node with mean of all entries.
VarPtr MeanAll(const VarPtr& x);

/// 1x1 node: sum of squares of all entries (for L2 penalties).
VarPtr SumSquares(const VarPtr& x);

/// Binary cross-entropy between predictions `p` in (0,1) and constant
/// targets `t` in [0,1], summed over entries; clamps p to [eps, 1-eps].
/// Implements Eq. 17 when `p` = sigmoid(P P^T) and `t` = A~.
VarPtr BinaryCrossEntropySum(const VarPtr& p, const Matrix& targets,
                             double eps = 1e-10);

/// Same, but weighting positive-target terms by pos_weight (class-imbalance
/// handling used by GAE on sparse adjacency).
VarPtr WeightedBinaryCrossEntropySum(const VarPtr& p, const Matrix& targets,
                                     double pos_weight, double eps = 1e-10);

/// Softmax + cross-entropy over selected rows against integer labels;
/// returns mean negative log-likelihood (semi-supervised GCN loss).
VarPtr SoftmaxCrossEntropy(const VarPtr& logits, const std::vector<int>& rows,
                           const std::vector<int>& labels);

/// 1x1 node: sum(P (.) (S P)) for constant sparse S — the observed part of
/// the trace-form modularity tr(P^T A~ P) without densifying A~.
VarPtr TraceQuadraticSparse(const SparseMatrix* s, const VarPtr& p);

/// 1x1 node: || P^T k ||^2 for a constant vector k — the rank-1 null-model
/// part of the generalised modularity (tr(P^T kk^T P)).
VarPtr RowWeightedColSumSquares(const VarPtr& p, const std::vector<double>& k);

/// Extracts the given rows as a new node (gradient scatters back).
VarPtr SelectRows(const VarPtr& x, const std::vector<int>& rows);

/// Single-head graph attention aggregation (Velickovic et al., ICLR'18):
/// for every node i with neighbourhood N(i) (given by the constant sparse
/// pattern `adj`, which should include self-loops),
///   e_ij   = LeakyReLU(a_src . h_i + a_dst . h_j, slope)
///   alpha  = softmax_j(e_ij)
///   out_i  = sum_j alpha_ij h_j.
/// `h` is (N x d), `a_src` and `a_dst` are (1 x d) attention vectors.
/// Gradients flow into h, a_src and a_dst.
VarPtr GraphAttention(const SparseMatrix* adj, const VarPtr& h,
                      const VarPtr& a_src, const VarPtr& a_dst,
                      double slope = 0.2);

/// A (node pair, target) sample for sampled reconstruction losses.
struct PairTarget {
  int u;
  int v;
  double target;  ///< In [0, 1].
};

/// Sum over pairs of BCE(sigmoid(p_u . p_v), target), computed in the
/// numerically stable softplus form. This is the sampled equivalent of
/// BinaryCrossEntropySum(sigmoid(P P^T), A~) used when N^2 is too large.
VarPtr InnerProductPairBce(const VarPtr& p,
                           const std::vector<PairTarget>& pairs);

}  // namespace aneci::ag

#endif  // ANECI_AUTOGRAD_OPS_H_

// Numerical gradient verification used by the autograd test-suite: compares
// analytic gradients against central finite differences.
#ifndef ANECI_AUTOGRAD_GRAD_CHECK_H_
#define ANECI_AUTOGRAD_GRAD_CHECK_H_

#include <functional>

#include "autograd/variable.h"

namespace aneci::ag {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool ok = false;
};

/// `build` must construct a fresh 1x1 loss node from the *current* value of
/// `param` each time it is called (the graph is rebuilt per evaluation).
/// Perturbs every entry of `param` by +/-h and compares the analytic
/// gradient against (f(x+h) - f(x-h)) / (2h).
GradCheckResult CheckGradient(const VarPtr& param,
                              const std::function<VarPtr()>& build,
                              double h = 1e-5, double tolerance = 1e-4);

}  // namespace aneci::ag

#endif  // ANECI_AUTOGRAD_GRAD_CHECK_H_

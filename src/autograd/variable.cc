#include "autograd/variable.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "autograd/memory_planner.h"
#include "util/check.h"
#include "util/metrics.h"

namespace aneci::ag {

uint64_t Variable::next_id_ = 0;

Variable::Variable(Matrix value, bool requires_grad)
    : value_(std::move(value)), requires_grad_(requires_grad), id_(next_id_++) {}

void Variable::AccumulateGrad(const Matrix& g) {
  ANECI_CHECK(g.rows() == value_.rows() && g.cols() == value_.cols());
  if (grad_.empty()) {
    grad_ = g;
  } else {
    grad_ += g;
  }
}

void Variable::AccumulateGrad(Matrix&& g) {
  ANECI_CHECK(g.rows() == value_.rows() && g.cols() == value_.cols());
  if (grad_.empty()) {
    grad_ = std::move(g);
  } else {
    grad_ += g;
    ReleaseGrad(std::move(g));
  }
}

void Variable::ZeroGrad() {
  if (!grad_.empty()) grad_.SetZero();
}

VarPtr MakeConstant(Matrix value) {
  return std::make_shared<Variable>(std::move(value), /*requires_grad=*/false);
}

VarPtr MakeParameter(Matrix value) {
  return std::make_shared<Variable>(std::move(value), /*requires_grad=*/true);
}

void Backward(const VarPtr& root) { Backward(root, BackwardOptions{}); }

void Backward(const VarPtr& root, const BackwardOptions& opts) {
  ANECI_CHECK(root != nullptr);
  ANECI_CHECK_MSG(root->value().rows() == 1 && root->value().cols() == 1,
                  "Backward root must be a 1x1 scalar");

  // Collect reachable nodes; creation id gives a topological order because
  // every op's output is created after its inputs.
  std::vector<Variable*> nodes;
  std::unordered_set<Variable*> seen;
  std::vector<Variable*> stack = {root.get()};
  seen.insert(root.get());
  while (!stack.empty()) {
    Variable* v = stack.back();
    stack.pop_back();
    nodes.push_back(v);
    for (const VarPtr& p : v->parents) {
      if (seen.insert(p.get()).second) stack.push_back(p.get());
    }
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const Variable* a, const Variable* b) { return a->id() > b->id(); });

  // The planner scopes buffer recycling to this sweep: closures acquire
  // gradient matrices through it and a node's buffer returns to the arena
  // the moment its closure has consumed it (reverse order makes it dead —
  // all consumers already ran; only closure-less nodes are read later).
  MemoryPlanner planner(opts.recycle_buffers);

  Matrix seed(1, 1);
  seed(0, 0) = 1.0;
  root->AccumulateGrad(std::move(seed));

  for (Variable* v : nodes) {
    if (!v->backward_fn || v->grad().empty()) continue;
    v->backward_fn(*v);
    if (opts.recycle_buffers) ReleaseGrad(std::move(v->mutable_grad()));
  }

  static Gauge* peak_bytes = MetricsRegistry::Global().GetGauge(
      "autograd/peak_bytes", MetricClass::kDeterministic);
  peak_bytes->Set(static_cast<double>(planner.fresh_bytes()));
}

}  // namespace aneci::ag

#include "autograd/variable.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace aneci::ag {

uint64_t Variable::next_id_ = 0;

Variable::Variable(Matrix value, bool requires_grad)
    : value_(std::move(value)), requires_grad_(requires_grad), id_(next_id_++) {}

void Variable::AccumulateGrad(const Matrix& g) {
  ANECI_CHECK(g.rows() == value_.rows() && g.cols() == value_.cols());
  if (grad_.empty()) {
    grad_ = g;
  } else {
    grad_ += g;
  }
}

void Variable::ZeroGrad() {
  if (!grad_.empty()) grad_.SetZero();
}

VarPtr MakeConstant(Matrix value) {
  return std::make_shared<Variable>(std::move(value), /*requires_grad=*/false);
}

VarPtr MakeParameter(Matrix value) {
  return std::make_shared<Variable>(std::move(value), /*requires_grad=*/true);
}

void Backward(const VarPtr& root) {
  ANECI_CHECK(root != nullptr);
  ANECI_CHECK_MSG(root->value().rows() == 1 && root->value().cols() == 1,
                  "Backward root must be a 1x1 scalar");

  // Collect reachable nodes; creation id gives a topological order because
  // every op's output is created after its inputs.
  std::vector<Variable*> nodes;
  std::unordered_set<Variable*> seen;
  std::vector<Variable*> stack = {root.get()};
  seen.insert(root.get());
  while (!stack.empty()) {
    Variable* v = stack.back();
    stack.pop_back();
    nodes.push_back(v);
    for (const VarPtr& p : v->parents) {
      if (seen.insert(p.get()).second) stack.push_back(p.get());
    }
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const Variable* a, const Variable* b) { return a->id() > b->id(); });

  Matrix seed(1, 1);
  seed(0, 0) = 1.0;
  root->AccumulateGrad(seed);

  for (Variable* v : nodes) {
    if (v->backward_fn && !v->grad().empty()) v->backward_fn(*v);
  }
}

}  // namespace aneci::ag

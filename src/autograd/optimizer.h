// First-order optimisers over parameter nodes. The training loop pattern is:
//   optimizer.ZeroGrad(); auto loss = BuildLoss(); Backward(loss);
//   optimizer.Step();
#ifndef ANECI_AUTOGRAD_OPTIMIZER_H_
#define ANECI_AUTOGRAD_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace aneci::ag {

/// Base interface; owns references to the parameters it updates.
class Optimizer {
 public:
  explicit Optimizer(std::vector<VarPtr> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored on parameters.
  virtual void Step() = 0;

  void ZeroGrad() {
    for (const VarPtr& p : params_) p->ZeroGrad();
  }

  const std::vector<VarPtr>& params() const { return params_; }

 protected:
  std::vector<VarPtr> params_;
};

/// Plain SGD with optional L2 weight decay.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<VarPtr> params, double lr, double weight_decay = 0.0)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

  void Step() override;

 private:
  double lr_;
  double weight_decay_;
};

/// Adam (Kingma & Ba 2015) with decoupled gradient clipping by global norm.
class Adam final : public Optimizer {
 public:
  struct Options {
    double lr = 0.01;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
    double clip_norm = 0.0;  ///< 0 disables clipping.
  };

  Adam(std::vector<VarPtr> params, const Options& options);

  void Step() override;

  // --- Checkpointable state (util/checkpoint.h) ------------------------------
  // Step counter, moment buffers and the (watchdog-adjustable) learning rate
  // are exposed so a training run can be snapshotted and later resumed
  // bit-identically.

  int step() const { return t_; }
  void set_step(int t) { t_ = t; }

  double lr() const { return options_.lr; }
  void set_lr(double lr) { options_.lr = lr; }

  const std::vector<Matrix>& first_moments() const { return m_; }
  const std::vector<Matrix>& second_moments() const { return v_; }

  /// Replaces both moment buffers; shapes must match the parameters.
  void SetMoments(std::vector<Matrix> m, std::vector<Matrix> v);

 private:
  Options options_;
  int t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace aneci::ag

#endif  // ANECI_AUTOGRAD_OPTIMIZER_H_

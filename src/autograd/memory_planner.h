// Tape-level gradient buffer recycling for the backward sweep.
//
// The reverse sweep visits nodes in decreasing creation order, so a node's
// gradient buffer is dead the moment its backward closure returns (all of
// its consumers ran earlier; only parameters — nodes without a closure —
// are read after Backward()). Backward() exploits that liveness structure:
// it installs a MemoryPlanner for the duration of the sweep, op closures
// acquire their gradient matrices through it, and dead buffers are released
// into a power-of-two size-bucketed arena for the next acquisition of a
// similar size to reuse.
//
// Numerics are byte-identical with the planner on or off: AcquireZeroed
// returns an all-zero buffer exactly like a fresh Matrix, and AcquireUninit
// is only used by callers that overwrite every element before any read
// (GEMM/SpMM outputs with beta == 0 semantics, full elementwise rewrites).
//
// Accounting: fresh_bytes() is the cumulative bytes of arena misses in one
// sweep. Because every acquired buffer stays resident until the sweep ends
// (either live in a grad or pooled in the arena), this equals the sweep's
// peak gradient footprint; Backward() publishes it as the
// `autograd/peak_bytes` gauge (MetricClass::kDeterministic — the sweep is
// serial, so the value is thread-count invariant). With recycling off every
// acquisition is a miss, so the gauge reproduces the legacy
// allocate-per-op footprint, which is what the planner regression test
// compares against.
#ifndef ANECI_AUTOGRAD_MEMORY_PLANNER_H_
#define ANECI_AUTOGRAD_MEMORY_PLANNER_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace aneci::ag {

/// Power-of-two size-bucketed free lists of raw double buffers. Bucket b
/// holds buffers whose element count rounds up to 2^b; lists are LIFO and
/// every operation happens on the (serial) backward sweep, so the reuse
/// pattern is a function of the tape alone.
class BufferArena {
 public:
  /// A pooled buffer resized to `count` (contents unspecified), or an empty
  /// vector when the bucket is dry (`*fresh` reports which).
  std::vector<double> Acquire(int64_t count, bool* fresh);

  void Release(std::vector<double>&& buf);

 private:
  static int BucketIndex(int64_t count);

  std::vector<std::vector<std::vector<double>>> buckets_{
      std::vector<std::vector<std::vector<double>>>(64)};
};

/// Scoped planner installed by Backward() for one sweep (nestable; the
/// innermost instance is Current()). With recycle == false it only keeps
/// the byte accounting — acquisitions always allocate and releases drop —
/// which reproduces the legacy per-op allocation behaviour exactly.
class MemoryPlanner {
 public:
  explicit MemoryPlanner(bool recycle);
  ~MemoryPlanner();

  MemoryPlanner(const MemoryPlanner&) = delete;
  MemoryPlanner& operator=(const MemoryPlanner&) = delete;

  /// The innermost planner on this thread, or nullptr outside Backward().
  static MemoryPlanner* Current();

  bool recycle() const { return recycle_; }

  /// Cumulative bytes of fresh (non-reused) acquisitions this sweep.
  uint64_t fresh_bytes() const { return fresh_bytes_; }

  /// Cumulative bytes served from the arena this sweep.
  uint64_t reused_bytes() const { return reused_bytes_; }

  Matrix AcquireUninit(int rows, int cols);
  Matrix AcquireZeroed(int rows, int cols);
  void Release(Matrix&& m);

 private:
  bool recycle_;
  uint64_t fresh_bytes_ = 0;
  uint64_t reused_bytes_ = 0;
  BufferArena arena_;
  MemoryPlanner* prev_;
};

// Helpers for op backward closures. With no active planner they degrade to
// plain Matrix construction / destruction, so closures stay correct when
// invoked outside Backward() (e.g. unit tests driving backward_fn by hand).

/// A (rows x cols) gradient buffer with unspecified contents. Callers MUST
/// overwrite every element before reading any.
Matrix AcquireGradUninit(int rows, int cols);

/// A (rows x cols) all-zero gradient buffer — bit-identical to Matrix(rows,
/// cols) — for scatter-style closures that accumulate into zeros.
Matrix AcquireGradZeroed(int rows, int cols);

/// A copy of `src` in a recycled buffer (the common `Matrix g = self.grad()`
/// pattern).
Matrix AcquireGradCopy(const Matrix& src);

/// Returns a dead gradient's storage to the active planner (no-op without
/// one, or with recycling off). Leaves `m` empty.
void ReleaseGrad(Matrix&& m);

}  // namespace aneci::ag

#endif  // ANECI_AUTOGRAD_MEMORY_PLANNER_H_

#include "autograd/memory_planner.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace aneci::ag {
namespace {

thread_local MemoryPlanner* g_current = nullptr;

}  // namespace

int BufferArena::BucketIndex(int64_t count) {
  ANECI_DCHECK(count > 0);
  int b = 0;
  while ((int64_t{1} << b) < count) ++b;
  return b;
}

std::vector<double> BufferArena::Acquire(int64_t count, bool* fresh) {
  const int b = BucketIndex(count);
  auto& bucket = buckets_[b];
  if (bucket.empty()) {
    *fresh = true;
    return {};
  }
  std::vector<double> buf = std::move(bucket.back());
  bucket.pop_back();
  buf.resize(static_cast<size_t>(count));
  *fresh = false;
  return buf;
}

void BufferArena::Release(std::vector<double>&& buf) {
  if (buf.empty()) return;
  buckets_[BucketIndex(static_cast<int64_t>(buf.size()))].push_back(
      std::move(buf));
}

MemoryPlanner::MemoryPlanner(bool recycle)
    : recycle_(recycle), prev_(g_current) {
  g_current = this;
}

MemoryPlanner::~MemoryPlanner() { g_current = prev_; }

MemoryPlanner* MemoryPlanner::Current() { return g_current; }

Matrix MemoryPlanner::AcquireUninit(int rows, int cols) {
  const int64_t count = static_cast<int64_t>(rows) * cols;
  if (count == 0) return Matrix(rows, cols);
  bool fresh = true;
  std::vector<double> buf;
  if (recycle_) buf = arena_.Acquire(count, &fresh);
  const uint64_t bytes = static_cast<uint64_t>(count) * sizeof(double);
  if (fresh) {
    fresh_bytes_ += bytes;
    buf.resize(static_cast<size_t>(count));
  } else {
    reused_bytes_ += bytes;
  }
  return Matrix(rows, cols, std::move(buf));
}

Matrix MemoryPlanner::AcquireZeroed(int rows, int cols) {
  Matrix m = AcquireUninit(rows, cols);
  m.SetZero();
  return m;
}

void MemoryPlanner::Release(Matrix&& m) {
  if (!recycle_) return;
  if (m.empty()) return;
  arena_.Release(m.TakeStorage());
}

Matrix AcquireGradUninit(int rows, int cols) {
  MemoryPlanner* planner = MemoryPlanner::Current();
  if (planner != nullptr) return planner->AcquireUninit(rows, cols);
  return Matrix(rows, cols);
}

Matrix AcquireGradZeroed(int rows, int cols) {
  MemoryPlanner* planner = MemoryPlanner::Current();
  if (planner != nullptr) return planner->AcquireZeroed(rows, cols);
  return Matrix(rows, cols);
}

Matrix AcquireGradCopy(const Matrix& src) {
  Matrix m = AcquireGradUninit(src.rows(), src.cols());
  std::copy(src.data(), src.data() + src.size(), m.data());
  return m;
}

void ReleaseGrad(Matrix&& m) {
  MemoryPlanner* planner = MemoryPlanner::Current();
  if (planner != nullptr) {
    planner->Release(std::move(m));
    if (!planner->recycle()) m = Matrix();
  } else {
    m = Matrix();
  }
}

}  // namespace aneci::ag

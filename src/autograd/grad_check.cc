#include "autograd/grad_check.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace aneci::ag {

GradCheckResult CheckGradient(const VarPtr& param,
                              const std::function<VarPtr()>& build, double h,
                              double tolerance) {
  ANECI_CHECK(param->requires_grad());
  param->ZeroGrad();
  VarPtr loss = build();
  Backward(loss);
  Matrix analytic = param->grad();
  ANECI_CHECK(!analytic.empty());

  GradCheckResult result;
  Matrix& w = param->mutable_value();
  for (int64_t i = 0; i < w.size(); ++i) {
    const double saved = w.data()[i];
    w.data()[i] = saved + h;
    const double f_plus = build()->value()(0, 0);
    w.data()[i] = saved - h;
    const double f_minus = build()->value()(0, 0);
    w.data()[i] = saved;

    const double numeric = (f_plus - f_minus) / (2.0 * h);
    const double a = analytic.data()[i];
    const double abs_err = std::abs(a - numeric);
    const double denom = std::max({std::abs(a), std::abs(numeric), 1.0});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
  }
  result.ok = result.max_rel_error <= tolerance;
  return result;
}

}  // namespace aneci::ag

#include "autograd/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace aneci::ag {

void Sgd::Step() {
  for (const VarPtr& p : params_) {
    if (p->grad().empty()) continue;
    Matrix& w = p->mutable_value();
    const Matrix& g = p->grad();
    for (int64_t i = 0; i < w.size(); ++i) {
      double gi = g.data()[i] + weight_decay_ * w.data()[i];
      w.data()[i] -= lr_ * gi;
    }
  }
}

Adam::Adam(std::vector<VarPtr> params, const Options& options)
    : Optimizer(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const VarPtr& p : params_) {
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void Adam::SetMoments(std::vector<Matrix> m, std::vector<Matrix> v) {
  ANECI_CHECK_EQ(m.size(), params_.size());
  ANECI_CHECK_EQ(v.size(), params_.size());
  for (size_t k = 0; k < params_.size(); ++k) {
    ANECI_CHECK_EQ(m[k].rows(), params_[k]->value().rows());
    ANECI_CHECK_EQ(m[k].cols(), params_[k]->value().cols());
    ANECI_CHECK_EQ(v[k].rows(), params_[k]->value().rows());
    ANECI_CHECK_EQ(v[k].cols(), params_[k]->value().cols());
  }
  m_ = std::move(m);
  v_ = std::move(v);
}

void Adam::Step() {
  ++t_;
  double scale = 1.0;
  if (options_.clip_norm > 0.0) {
    double total = 0.0;
    for (const VarPtr& p : params_) {
      if (p->grad().empty()) continue;
      for (int64_t i = 0; i < p->grad().size(); ++i) {
        const double g = p->grad().data()[i];
        total += g * g;
      }
    }
    total = std::sqrt(total);
    if (total > options_.clip_norm) scale = options_.clip_norm / total;
  }

  const double bc1 = 1.0 - std::pow(options_.beta1, t_);
  const double bc2 = 1.0 - std::pow(options_.beta2, t_);
  for (size_t k = 0; k < params_.size(); ++k) {
    const VarPtr& p = params_[k];
    if (p->grad().empty()) continue;
    Matrix& w = p->mutable_value();
    const Matrix& g = p->grad();
    Matrix& m = m_[k];
    Matrix& v = v_[k];
    for (int64_t i = 0; i < w.size(); ++i) {
      double gi = g.data()[i] * scale + options_.weight_decay * w.data()[i];
      m.data()[i] = options_.beta1 * m.data()[i] + (1.0 - options_.beta1) * gi;
      v.data()[i] =
          options_.beta2 * v.data()[i] + (1.0 - options_.beta2) * gi * gi;
      const double mhat = m.data()[i] / bc1;
      const double vhat = v.data()[i] / bc2;
      w.data()[i] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
    }
  }
}

}  // namespace aneci::ag

// Tape-free dynamic reverse-mode automatic differentiation over dense
// matrices. Each op builds a node holding the forward value and a closure
// that scatters the node's gradient into its parents; Backward() walks nodes
// in reverse creation order (a valid topological order for dynamically built
// graphs).
//
// Usage:
//   auto w = MakeParameter(Matrix::GlorotUniform(16, 8, rng));
//   auto h = LeakyRelu(SpMM(a_norm, MatMul(x, w)), 0.01);
//   auto loss = SumAll(h);
//   Backward(loss);          // w->grad() now holds dLoss/dW
#ifndef ANECI_AUTOGRAD_VARIABLE_H_
#define ANECI_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "linalg/matrix.h"

namespace aneci::ag {

class Variable;
using VarPtr = std::shared_ptr<Variable>;

/// A node in the autodiff graph: a dense value, an optional gradient buffer,
/// and the backward closure installed by the op that produced it.
class Variable {
 public:
  explicit Variable(Matrix value, bool requires_grad);

  Variable(const Variable&) = delete;
  Variable& operator=(const Variable&) = delete;

  const Matrix& value() const { return value_; }
  Matrix& mutable_value() { return value_; }

  /// Gradient of the final scalar w.r.t. this node. Zero matrix before
  /// Backward() touches it.
  const Matrix& grad() const { return grad_; }
  Matrix& mutable_grad() { return grad_; }

  bool requires_grad() const { return requires_grad_; }
  uint64_t id() const { return id_; }

  /// Adds g into the gradient buffer, allocating it on first use.
  void AccumulateGrad(const Matrix& g);

  /// Move overload: adopts g's storage when the buffer is empty; otherwise
  /// adds and returns g's storage to the active memory planner (if any).
  /// Backward closures that build their gradient in an acquired buffer
  /// (autograd/memory_planner.h) should use this so storage recycles.
  void AccumulateGrad(Matrix&& g);

  /// Clears the gradient buffer (parameters keep theirs across steps unless
  /// the optimiser calls this).
  void ZeroGrad();

  // Graph wiring — used by op constructors.
  std::vector<VarPtr> parents;
  std::function<void(Variable&)> backward_fn;

 private:
  static uint64_t next_id_;

  Matrix value_;
  Matrix grad_;
  bool requires_grad_;
  uint64_t id_;
};

/// Non-trainable input node.
VarPtr MakeConstant(Matrix value);

/// Trainable parameter node (requires_grad = true).
VarPtr MakeParameter(Matrix value);

struct BackwardOptions {
  /// Recycle intermediate gradient buffers through the sweep-scoped arena
  /// (autograd/memory_planner.h). Numerics are byte-identical either way;
  /// off additionally keeps intermediate grads readable after the sweep
  /// (with recycling on, only nodes without a backward closure — parameters
  /// and leaves — retain their gradient, which is all any caller in the
  /// library reads). Either way the sweep publishes its gradient footprint
  /// as the `autograd/peak_bytes` gauge.
  bool recycle_buffers = true;
};

/// Reverse-mode sweep from `root`, which must be 1x1. Seeds droot/droot = 1
/// and propagates through every reachable node that requires a gradient.
void Backward(const VarPtr& root);
void Backward(const VarPtr& root, const BackwardOptions& opts);

}  // namespace aneci::ag

#endif  // ANECI_AUTOGRAD_VARIABLE_H_
